//! Simulation run configuration.

use ccsim_des::SimDuration;
use ccsim_stats::Confidence;
use ccsim_workload::{ParamError, Params};

use crate::algorithm::{CcAlgorithm, VictimPolicy};
use crate::budget::RunBudget;

/// Statistical-analysis settings (the paper's modified batch means method:
/// 20 batches with a large batch time, 90% confidence intervals, after a
/// discarded warmup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Batches discarded before measurement starts.
    pub warmup_batches: u32,
    /// Measured batches.
    pub batches: u32,
    /// Simulated time per batch.
    pub batch_time: SimDuration,
    /// Confidence level for interval estimates.
    pub confidence: Confidence,
}

impl MetricsConfig {
    /// The paper-faithful setting: 20 measured batches, 90% confidence.
    #[must_use]
    pub fn paper() -> Self {
        MetricsConfig {
            warmup_batches: 2,
            batches: 20,
            batch_time: SimDuration::from_secs(150),
            confidence: Confidence::Ninety,
        }
    }

    /// A quick setting for tests and smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        MetricsConfig {
            warmup_batches: 1,
            batches: 8,
            batch_time: SimDuration::from_secs(40),
            confidence: Confidence::Ninety,
        }
    }

    /// Total simulated horizon.
    #[must_use]
    pub fn horizon(&self) -> SimDuration {
        SimDuration::from_micros(
            self.batch_time.as_micros() * u64::from(self.warmup_batches + self.batches),
        )
    }

    /// Validate the settings.
    ///
    /// # Errors
    /// Returns [`ParamError`] if no batches are measured or the batch time
    /// is zero.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.batches == 0 {
            return Err(ParamError("metrics.batches must be positive".into()));
        }
        if self.batch_time.is_zero() {
            return Err(ParamError("metrics.batch_time must be positive".into()));
        }
        Ok(())
    }
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig::paper()
    }
}

/// Everything needed to run one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Model parameters (paper Table 1).
    pub params: Params,
    /// The concurrency control algorithm under test.
    pub algorithm: CcAlgorithm,
    /// Deadlock victim selection (blocking algorithm only).
    pub victim: VictimPolicy,
    /// Apply the restart delay policy to *every* algorithm, not just
    /// immediate-restart — the paper's Figure 11 ablation.
    pub restart_delay_for_all: bool,
    /// Master random seed; identical configs with identical seeds replay
    /// bit-for-bit.
    pub seed: u64,
    /// Optional separate seed for the *workload* streams (arrivals, think
    /// times, access patterns, disk selection). When set, two configs that
    /// share a `workload_seed` see the same transaction mix regardless of
    /// `seed` — the common-random-numbers pairing used for sharp
    /// algorithm-vs-algorithm comparisons. When `None`, every stream
    /// derives from `seed` exactly as before.
    pub workload_seed: Option<u64>,
    /// Record every committed transaction's footprint for offline
    /// serializability checking (see `ccsim-history`). Off by default —
    /// long runs accumulate large histories.
    pub record_history: bool,
    /// Retain the last N structured trace events (0 = tracing off).
    pub trace_capacity: usize,
    /// Elide the calendar hop for resource requests that find an idle
    /// server (the uncontended fast path). On by default: the elision is a
    /// pure cost optimization — the event sequence, all accounting, and
    /// every report are byte-identical either way. The switch exists so
    /// determinism tests can prove exactly that by forcing it off.
    pub elide_uncontended: bool,
    /// Use the two-tier event calendar (near-horizon lane + overflow
    /// heap). On by default; off routes every event through the heap — the
    /// single-tier baseline. Delivery order, and therefore every report,
    /// is byte-identical either way; the switch exists for ablation
    /// benchmarks and the determinism tests that prove the equivalence.
    pub two_tier_calendar: bool,
    /// Batch means settings.
    pub metrics: MetricsConfig,
    /// Hard ceilings for the run (events, simulated time, wall clock). The
    /// default caps events only; see [`RunBudget`].
    pub budget: RunBudget,
    /// Optional shared event allowance, charged as the run progresses and
    /// settled exactly at run end. `None` (the default) adds no hot-path
    /// work; see [`EventPool`]. Multi-tenant schedulers attach one pool
    /// per tenant so a client's total simulated work is bounded across
    /// runs.
    pub event_pool: Option<crate::EventPool>,
    /// Worker threads for the speculative window-parallel engine mode.
    /// `0` and `1` both mean fully sequential (no pool is spawned, no
    /// atomics touched — the mode costs nothing when off). At `N >= 2`
    /// the loop pops safe time windows, speculates chunk prefetch/hint
    /// work on `N - 1` helper threads plus the merge thread, and merges
    /// serially in global-seq order; reports, streaming quantiles, and
    /// golden traces are byte-identical to sequential at any `N`.
    pub workers: u32,
}

impl SimConfig {
    /// A configuration with paper-baseline parameters and metrics.
    #[must_use]
    pub fn new(algorithm: CcAlgorithm) -> Self {
        SimConfig {
            params: Params::paper_baseline(),
            algorithm,
            victim: VictimPolicy::Youngest,
            restart_delay_for_all: false,
            seed: 0x5EED_CC85,
            workload_seed: None,
            record_history: false,
            trace_capacity: 0,
            elide_uncontended: true,
            two_tier_calendar: true,
            metrics: MetricsConfig::paper(),
            budget: RunBudget::default(),
            event_pool: None,
            workers: 1,
        }
    }

    /// Builder-style parameter replacement.
    #[must_use]
    pub fn with_params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }

    /// Builder-style seed replacement.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style metrics replacement.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = metrics;
        self
    }

    /// Builder-style workload-seed replacement (common random numbers).
    #[must_use]
    pub fn with_workload_seed(mut self, workload_seed: u64) -> Self {
        self.workload_seed = Some(workload_seed);
        self
    }

    /// Builder-style run-budget replacement.
    #[must_use]
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Builder-style shared event-pool attachment (see
    /// [`SimConfig::event_pool`]).
    #[must_use]
    pub fn with_event_pool(mut self, pool: crate::EventPool) -> Self {
        self.event_pool = Some(pool);
        self
    }

    /// Builder-style toggle for the uncontended fast path (see
    /// [`SimConfig::elide_uncontended`]).
    #[must_use]
    pub fn with_elision(mut self, elide: bool) -> Self {
        self.elide_uncontended = elide;
        self
    }

    /// Builder-style toggle for the two-tier calendar (see
    /// [`SimConfig::two_tier_calendar`]).
    #[must_use]
    pub fn with_two_tier_calendar(mut self, two_tier: bool) -> Self {
        self.two_tier_calendar = two_tier;
        self
    }

    /// Builder-style worker-count replacement (see [`SimConfig::workers`]).
    /// `0` and `1` both select the sequential loop.
    #[must_use]
    pub fn with_workers(mut self, workers: u32) -> Self {
        self.workers = workers;
        self
    }

    /// Validate the whole configuration.
    ///
    /// # Errors
    /// Returns [`ParamError`] from parameter or metrics validation.
    pub fn validate(&self) -> Result<(), ParamError> {
        self.params.validate()?;
        self.metrics.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_metrics_horizon() {
        let m = MetricsConfig::paper();
        assert_eq!(m.batches, 20);
        assert_eq!(m.horizon(), SimDuration::from_secs(150 * 22));
        assert!(m.validate().is_ok());
    }

    #[test]
    fn metrics_validation() {
        let mut m = MetricsConfig::quick();
        m.batches = 0;
        assert!(m.validate().is_err());
        let mut m = MetricsConfig::quick();
        m.batch_time = SimDuration::ZERO;
        assert!(m.validate().is_err());
    }

    #[test]
    fn config_builders() {
        let c = SimConfig::new(CcAlgorithm::Optimistic)
            .with_seed(99)
            .with_metrics(MetricsConfig::quick())
            .with_params(Params::low_conflict());
        assert_eq!(c.seed, 99);
        assert_eq!(c.metrics, MetricsConfig::quick());
        assert_eq!(c.params.db_size, 10_000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn budget_builder_replaces_default() {
        let c = SimConfig::new(CcAlgorithm::Blocking);
        assert_eq!(c.budget, RunBudget::default());
        let c = c.with_budget(RunBudget::unlimited().with_max_events(7));
        assert_eq!(c.budget.max_events, Some(7));
    }

    #[test]
    fn config_validation_propagates() {
        let mut c = SimConfig::new(CcAlgorithm::Blocking);
        c.params.mpl = 0;
        assert!(c.validate().is_err());
    }
}
