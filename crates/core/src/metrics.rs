//! Run-time metric collection and the final [`Report`].
//!
//! Metrics follow the paper's observables: throughput (Figures 3–5, 8, 11,
//! 12, 14, 16, 18, 20), mean and standard deviation of response time
//! (Figures 7, 10), block and restart ratios (Figure 6), and total vs.
//! *useful* resource utilization (Figures 9, 13, 15, 17, 19, 21).

use ccsim_des::{SimDuration, SimTime};
use ccsim_stats::{
    BatchMeans, Confidence, Estimate, LogHistogram, P2Quantile, TimeWeighted, Welford,
};

use crate::config::MetricsConfig;

/// Counters that accumulate within one batch and reset at its boundary.
#[derive(Debug, Default, Clone, Copy)]
struct BatchCounters {
    commits: u64,
    blocks: u64,
    restarts: u64,
    useful_cpu_us: u64,
    useful_io_us: u64,
}

/// Per-class accumulators (class 0 = the primary Table-1 class).
#[derive(Debug, Clone, Default)]
struct ClassStats {
    commits: u64,
    restarts: u64,
    response: Welford,
}

/// Live metric collector, driven by the engine.
#[derive(Debug)]
pub struct Metrics {
    cfg: MetricsConfig,
    in_warmup: bool,
    batches_done: u32,
    warmup_done: u32,
    batch: BatchCounters,
    // Totals over the measured window.
    commits: u64,
    blocks: u64,
    restarts: u64,
    deadlocks: u64,
    useful_cpu_us: u64,
    useful_io_us: u64,
    // Busy-time baselines at the last batch boundary.
    cpu_busy_baseline_us: u64,
    io_busy_baseline_us: u64,
    // Series.
    throughput: BatchMeans,
    disk_util_total: BatchMeans,
    disk_util_useful: BatchMeans,
    cpu_util_total: BatchMeans,
    cpu_util_useful: BatchMeans,
    response: Welford,
    response_hist: LogHistogram,
    // O(1)-memory streaming response quantiles (P²), kept strictly out of
    // [`Report`]: the scale regime reads them through
    // [`Metrics::streaming_quantiles`] while serialized experiment output
    // stays byte-identical to the buffered-only collector.
    response_p50: P2Quantile,
    response_p95: P2Quantile,
    response_p99: P2Quantile,
    classes: Vec<ClassStats>,
    active: TimeWeighted,
    avg_active_batches: Welford,
    // Capacity denominators (µs of resource-time per batch); zero when
    // resources are infinite (utilization is then reported as 0).
    cpu_capacity_us: u64,
    io_capacity_us: u64,
}

impl Metrics {
    /// Create a collector. `num_cpus`/`num_disks` of zero mean infinite
    /// resources (utilizations reported as zero). `num_classes` sizes the
    /// per-class breakdown (1 for the paper's single-class workload).
    #[must_use]
    pub fn new(cfg: MetricsConfig, num_cpus: u32, num_disks: u32, num_classes: usize) -> Self {
        let conf = cfg.confidence;
        let batch_us = cfg.batch_time.as_micros();
        Metrics {
            cfg,
            in_warmup: cfg.warmup_batches > 0,
            batches_done: 0,
            warmup_done: 0,
            batch: BatchCounters::default(),
            commits: 0,
            blocks: 0,
            restarts: 0,
            deadlocks: 0,
            useful_cpu_us: 0,
            useful_io_us: 0,
            cpu_busy_baseline_us: 0,
            io_busy_baseline_us: 0,
            throughput: BatchMeans::new(conf),
            disk_util_total: BatchMeans::new(conf),
            disk_util_useful: BatchMeans::new(conf),
            cpu_util_total: BatchMeans::new(conf),
            cpu_util_useful: BatchMeans::new(conf),
            response: Welford::new(),
            response_hist: LogHistogram::for_latencies(),
            response_p50: P2Quantile::new(0.5),
            response_p95: P2Quantile::new(0.95),
            response_p99: P2Quantile::new(0.99),
            classes: vec![ClassStats::default(); num_classes.max(1)],
            active: TimeWeighted::new(SimTime::ZERO, 0.0),
            avg_active_batches: Welford::new(),
            cpu_capacity_us: batch_us * u64::from(num_cpus),
            io_capacity_us: batch_us * u64::from(num_disks),
        }
    }

    /// Record a commit: its transaction class, response time, and the
    /// committing attempt's resource usage (which thereby becomes *useful*
    /// work).
    pub fn on_commit(
        &mut self,
        class: usize,
        response: SimDuration,
        attempt_cpu_us: u64,
        attempt_io_us: u64,
    ) {
        if self.in_warmup {
            return;
        }
        self.batch.commits += 1;
        self.commits += 1;
        let secs = response.as_secs_f64();
        self.response.add(secs);
        self.response_hist.add(secs);
        self.response_p50.add(secs);
        self.response_p95.add(secs);
        self.response_p99.add(secs);
        let cs = &mut self.classes[class];
        cs.commits += 1;
        cs.response.add(response.as_secs_f64());
        self.batch.useful_cpu_us += attempt_cpu_us;
        self.batch.useful_io_us += attempt_io_us;
        self.useful_cpu_us += attempt_cpu_us;
        self.useful_io_us += attempt_io_us;
    }

    /// Record that a transaction blocked.
    pub fn on_block(&mut self) {
        if self.in_warmup {
            return;
        }
        self.batch.blocks += 1;
        self.blocks += 1;
    }

    /// Record a restart of a `class` transaction; `deadlock` marks
    /// deadlock-victim restarts.
    pub fn on_restart(&mut self, class: usize, deadlock: bool) {
        if self.in_warmup {
            return;
        }
        self.batch.restarts += 1;
        self.restarts += 1;
        self.classes[class].restarts += 1;
        if deadlock {
            self.deadlocks += 1;
        }
    }

    /// Record a change in the number of active transactions.
    pub fn on_active_change(&mut self, now: SimTime, active: usize) {
        self.active.set(now, active as f64);
    }

    /// Close a batch at `now`, given the resources' cumulative busy times.
    /// Returns `true` when the configured number of measured batches is
    /// complete and the simulation should stop.
    pub fn on_batch_end(&mut self, now: SimTime, cpu_busy_us: u64, io_busy_us: u64) -> bool {
        let avg_active = self.active.roll_window(now);
        if self.in_warmup {
            self.warmup_done += 1;
            if self.warmup_done >= self.cfg.warmup_batches {
                self.in_warmup = false;
            }
            // Reset baselines so the measured window starts clean.
            self.cpu_busy_baseline_us = cpu_busy_us;
            self.io_busy_baseline_us = io_busy_us;
            self.batch = BatchCounters::default();
            return false;
        }
        let batch_secs = self.cfg.batch_time.as_secs_f64();
        self.throughput.push(self.batch.commits as f64 / batch_secs);
        self.avg_active_batches.add(avg_active);

        let cpu_delta = cpu_busy_us.saturating_sub(self.cpu_busy_baseline_us);
        let io_delta = io_busy_us.saturating_sub(self.io_busy_baseline_us);
        self.cpu_busy_baseline_us = cpu_busy_us;
        self.io_busy_baseline_us = io_busy_us;
        if self.cpu_capacity_us > 0 {
            self.cpu_util_total
                .push(cpu_delta as f64 / self.cpu_capacity_us as f64);
            self.cpu_util_useful
                .push(self.batch.useful_cpu_us as f64 / self.cpu_capacity_us as f64);
        }
        if self.io_capacity_us > 0 {
            self.disk_util_total
                .push(io_delta as f64 / self.io_capacity_us as f64);
            self.disk_util_useful
                .push(self.batch.useful_io_us as f64 / self.io_capacity_us as f64);
        }
        self.batch = BatchCounters::default();
        self.batches_done += 1;
        self.batches_done >= self.cfg.batches
    }

    /// Produce the final report.
    #[must_use]
    pub fn report(&self) -> Report {
        let commits = self.commits.max(1) as f64;
        Report {
            throughput: self.throughput.estimate(),
            throughput_per_batch: self.throughput.values().to_vec(),
            throughput_lag1: self.throughput.lag1_autocorrelation(),
            response_time_mean: self.response.mean(),
            response_time_std: self.response.sample_std_dev(),
            response_time_max: if self.response.count() == 0 {
                0.0
            } else {
                self.response.max()
            },
            response_time_p50: self.response_hist.quantile(0.5),
            response_time_p95: self.response_hist.quantile(0.95),
            response_time_p99: self.response_hist.quantile(0.99),
            block_ratio: self.blocks as f64 / commits,
            restart_ratio: self.restarts as f64 / commits,
            disk_util_total: self.disk_util_total.estimate(),
            disk_util_useful: self.disk_util_useful.estimate(),
            cpu_util_total: self.cpu_util_total.estimate(),
            cpu_util_useful: self.cpu_util_useful.estimate(),
            avg_active: self.avg_active_batches.mean(),
            class_reports: self
                .classes
                .iter()
                .map(|c| ClassReport {
                    commits: c.commits,
                    restarts: c.restarts,
                    restart_ratio: c.restarts as f64 / c.commits.max(1) as f64,
                    response_time_mean: c.response.mean(),
                    response_time_std: c.response.sample_std_dev(),
                })
                .collect(),
            commits: self.commits,
            blocks: self.blocks,
            restarts: self.restarts,
            deadlocks: self.deadlocks,
        }
    }

    /// The confidence level in use.
    #[must_use]
    pub fn confidence(&self) -> Confidence {
        self.cfg.confidence
    }

    /// The O(1)-memory streaming response-time quantiles (seconds). Parallel
    /// to the histogram estimates in [`Report`] but never serialized, so the
    /// scale regime can observe latencies without touching experiment
    /// output.
    #[must_use]
    pub fn streaming_quantiles(&self) -> StreamingQuantiles {
        StreamingQuantiles {
            p50: self.response_p50.quantile(),
            p95: self.response_p95.quantile(),
            p99: self.response_p99.quantile(),
            count: self.response_p50.count(),
        }
    }
}

/// Streaming (P²) response-time quantile estimates in seconds, with the
/// number of committed transactions they summarize. Deliberately not part
/// of [`Report`]: reading them cannot perturb serialized experiment output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingQuantiles {
    /// Median response time estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Observations (commits) summarized.
    pub count: u64,
}

/// Per-transaction-class observables (class 0 = the primary class).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// Commits of this class in the measured window.
    pub commits: u64,
    /// Restarts of this class.
    pub restarts: u64,
    /// Restarts per commit of this class.
    pub restart_ratio: f64,
    /// Mean response time of this class, seconds.
    pub response_time_mean: f64,
    /// Response-time standard deviation of this class, seconds.
    pub response_time_std: f64,
}

/// The observables of one simulation run (measured window only).
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Transactions committed per simulated second, with confidence
    /// half-width over batches.
    pub throughput: Estimate,
    /// Per-batch throughput values (diagnostics, plotting).
    pub throughput_per_batch: Vec<f64>,
    /// Lag-1 autocorrelation of batch throughputs (batch-size diagnostic).
    pub throughput_lag1: f64,
    /// Mean response time in seconds (submission to commit, across
    /// restarts).
    pub response_time_mean: f64,
    /// Standard deviation of response time in seconds.
    pub response_time_std: f64,
    /// Largest observed response time in seconds.
    pub response_time_max: f64,
    /// Median response time in seconds (log-histogram estimate, ±5%).
    pub response_time_p50: f64,
    /// 95th-percentile response time in seconds.
    pub response_time_p95: f64,
    /// 99th-percentile response time in seconds.
    pub response_time_p99: f64,
    /// Times blocked per commit (the paper's *block ratio*).
    pub block_ratio: f64,
    /// Restarts per commit (the paper's *restart ratio*).
    pub restart_ratio: f64,
    /// Total disk utilization in `[0, 1]` (zero under infinite resources).
    pub disk_util_total: Estimate,
    /// Useful disk utilization: busy time attributable to committed work.
    pub disk_util_useful: Estimate,
    /// Total CPU utilization.
    pub cpu_util_total: Estimate,
    /// Useful CPU utilization.
    pub cpu_util_useful: Estimate,
    /// Time-averaged number of active transactions (the *actual*
    /// multiprogramming level of paper §4.3).
    pub avg_active: f64,
    /// Per-class breakdown (one entry for the paper's single-class runs).
    pub class_reports: Vec<ClassReport>,
    /// Commits in the measured window.
    pub commits: u64,
    /// Blocks in the measured window.
    pub blocks: u64,
    /// Restarts in the measured window.
    pub restarts: u64,
    /// Deadlocks detected in the measured window.
    pub deadlocks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(warmup: u32, batches: u32, secs: u64) -> MetricsConfig {
        MetricsConfig {
            warmup_batches: warmup,
            batches,
            batch_time: SimDuration::from_secs(secs),
            confidence: Confidence::Ninety,
        }
    }

    #[test]
    fn warmup_discards_events() {
        let mut m = Metrics::new(cfg(1, 2, 10), 1, 2, 1);
        m.on_commit(0, SimDuration::from_secs(1), 100, 200);
        m.on_block();
        m.on_restart(0, true);
        assert!(!m.on_batch_end(SimTime::from_secs(10), 5_000_000, 9_000_000));
        // Nothing counted yet.
        let r = m.report();
        assert_eq!(r.commits, 0);
        assert_eq!(r.blocks, 0);
        // Now measured.
        m.on_commit(0, SimDuration::from_secs(2), 100, 200);
        assert!(!m.on_batch_end(SimTime::from_secs(20), 6_000_000, 10_000_000));
        assert!(m.on_batch_end(SimTime::from_secs(30), 6_000_000, 10_000_000));
        let r = m.report();
        assert_eq!(r.commits, 1);
        assert!((r.response_time_mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_is_commits_per_second() {
        let mut m = Metrics::new(cfg(0, 2, 10), 1, 2, 1);
        for _ in 0..50 {
            m.on_commit(0, SimDuration::from_millis(500), 0, 0);
        }
        m.on_batch_end(SimTime::from_secs(10), 0, 0);
        for _ in 0..30 {
            m.on_commit(0, SimDuration::from_millis(500), 0, 0);
        }
        assert!(m.on_batch_end(SimTime::from_secs(20), 0, 0));
        let r = m.report();
        assert!((r.throughput.mean - 4.0).abs() < 1e-12); // (5 + 3) / 2
        assert_eq!(r.throughput_per_batch, vec![5.0, 3.0]);
    }

    #[test]
    fn utilization_uses_busy_deltas() {
        // 1 disk, 10 s batches => capacity 10^7 µs per batch.
        let mut m = Metrics::new(cfg(1, 2, 10), 1, 1, 1);
        m.on_batch_end(SimTime::from_secs(10), 0, 2_000_000); // warmup: baseline 2 s
        m.on_commit(0, SimDuration::from_secs(1), 500_000, 4_000_000);
        m.on_batch_end(SimTime::from_secs(20), 3_000_000, 9_000_000);
        m.on_batch_end(SimTime::from_secs(30), 3_000_000, 9_000_000);
        let r = m.report();
        // Batch 1: io delta 7 s of 10 s => 0.7 total; useful 4 s => 0.4.
        // Batch 2: idle.
        assert!((r.disk_util_total.mean - 0.35).abs() < 1e-9);
        assert!((r.disk_util_useful.mean - 0.2).abs() < 1e-9);
        assert!((r.cpu_util_total.mean - 0.15).abs() < 1e-9);
        assert!((r.cpu_util_useful.mean - 0.025).abs() < 1e-9);
    }

    #[test]
    fn infinite_resources_report_zero_utilization() {
        let mut m = Metrics::new(cfg(0, 1, 10), 0, 0, 1);
        m.on_commit(0, SimDuration::from_secs(1), 100, 100);
        assert!(m.on_batch_end(SimTime::from_secs(10), 42, 42));
        let r = m.report();
        assert_eq!(r.disk_util_total.mean, 0.0);
        assert_eq!(r.cpu_util_total.mean, 0.0);
    }

    #[test]
    fn ratios_are_per_commit() {
        let mut m = Metrics::new(cfg(0, 1, 10), 1, 1, 1);
        for _ in 0..4 {
            m.on_commit(0, SimDuration::from_secs(1), 0, 0);
        }
        for _ in 0..6 {
            m.on_block();
        }
        for _ in 0..2 {
            m.on_restart(0, false);
        }
        m.on_restart(0, true);
        m.on_batch_end(SimTime::from_secs(10), 0, 0);
        let r = m.report();
        assert!((r.block_ratio - 1.5).abs() < 1e-12);
        assert!((r.restart_ratio - 0.75).abs() < 1e-12);
        assert_eq!(r.deadlocks, 1);
    }

    #[test]
    fn avg_active_is_time_weighted() {
        let mut m = Metrics::new(cfg(0, 1, 10), 1, 1, 1);
        m.on_active_change(SimTime::ZERO, 0);
        m.on_active_change(SimTime::from_secs(5), 10);
        assert!(m.on_batch_end(SimTime::from_secs(10), 0, 0));
        let r = m.report();
        assert!((r.avg_active - 5.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_quantiles_track_buffered_estimates() {
        let mut m = Metrics::new(cfg(0, 1, 10), 1, 1, 1);
        // 1..=1000 ms of response times: p50 ≈ 0.5 s, p95 ≈ 0.95 s.
        for i in 1..=1000 {
            m.on_commit(0, SimDuration::from_millis(i), 0, 0);
        }
        m.on_batch_end(SimTime::from_secs(10), 0, 0);
        let q = m.streaming_quantiles();
        assert_eq!(q.count, 1000);
        assert!((q.p50 - 0.5).abs() < 0.05, "p50 {}", q.p50);
        assert!((q.p95 - 0.95).abs() < 0.05, "p95 {}", q.p95);
        assert!((q.p99 - 0.99).abs() < 0.05, "p99 {}", q.p99);
        // The serialized report is produced from the histogram, not P²: the
        // two must agree within the histogram's resolution.
        let r = m.report();
        assert!((r.response_time_p50 - q.p50).abs() < 0.1 * q.p50.max(1e-9));
    }

    #[test]
    fn streaming_quantiles_ignore_warmup_and_empty_runs() {
        let mut m = Metrics::new(cfg(1, 1, 10), 1, 1, 1);
        m.on_commit(0, SimDuration::from_secs(9), 0, 0);
        assert_eq!(m.streaming_quantiles().count, 0);
        assert_eq!(m.streaming_quantiles().p99, 0.0);
    }

    #[test]
    fn zero_commit_run_reports_safely() {
        let mut m = Metrics::new(cfg(0, 1, 10), 1, 1, 1);
        m.on_block();
        assert!(m.on_batch_end(SimTime::from_secs(10), 0, 0));
        let r = m.report();
        assert_eq!(r.commits, 0);
        assert_eq!(r.throughput.mean, 0.0);
        assert_eq!(r.response_time_max, 0.0);
        assert!((r.block_ratio - 1.0).abs() < 1e-12); // per max(commits,1)
    }
}
