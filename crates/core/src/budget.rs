//! Run budgets and structured run errors.
//!
//! A long sweep is only as robust as its worst run: one livelocked or
//! runaway grid point must not be able to wedge the whole experiment. A
//! [`RunBudget`] puts hard ceilings on a single simulation run — events
//! processed, simulated time, and wall-clock time — and the engine checks
//! them inside its event loop. A run that exceeds its budget terminates
//! with [`RunError::BudgetExhausted`] carrying exactly where it stopped,
//! instead of hanging the worker that owns it.
//!
//! The event and simulated-time ceilings are *deterministic*: two runs of
//! the same configuration exhaust them at the same event with the same
//! counters. The wall-clock ceiling is a last-resort guard against
//! pathological slowness and is inherently host-dependent; leave it `None`
//! when reproducibility of the failure itself matters.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ccsim_des::{SimDuration, SimTime};
use ccsim_workload::ParamError;

/// A shared, depletable allowance of simulation events, charged by every
/// run it is attached to (see `SimConfig::event_pool`).
///
/// Where a [`RunBudget`] bounds one run, an `EventPool` bounds a *tenant*:
/// the sweep service gives each client one pool and attaches it to all of
/// the client's runs, so a client's total simulated work is capped across
/// jobs and across restarts of individual runs. The engine charges the
/// pool in blocks of [`EventPool::BLOCK`] events (the same cadence as its
/// wall-clock budget check) and refunds the unused remainder when the run
/// ends, so [`EventPool::consumed`] is exact. A run that cannot charge the
/// next block stops with [`RunError::BudgetExhausted`] of kind
/// [`BudgetKind::Pool`].
///
/// Exhaustion of a pool shared by concurrent runs depends on their
/// scheduling; for deterministic failures use a per-run [`RunBudget`].
///
/// The counter is a lock-free atomic, so [`EventPool::depleted`] admission
/// checks and in-flight charges are safe from any thread — including the
/// engine's window-parallel worker lanes, which observe the pool while the
/// merge thread charges it. Charges keep the sequential loop's exact
/// 8192-event cadence in window mode, so a budget stop lands on the same
/// event at any worker count (the sequential hot path itself polls a plain
/// `u64` and only touches the atomic at block boundaries).
#[derive(Debug, Clone)]
pub struct EventPool {
    remaining: Arc<AtomicU64>,
    initial: u64,
}

impl EventPool {
    /// Charge granularity, in events. Matches the engine's wall-clock
    /// budget check period so pool accounting adds no extra hot-path work.
    pub const BLOCK: u64 = 8192;

    /// A pool holding `events` simulation events.
    #[must_use]
    pub fn new(events: u64) -> Self {
        EventPool {
            remaining: Arc::new(AtomicU64::new(events)),
            initial: events,
        }
    }

    /// A pool that never runs out in practice.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::new(u64::MAX)
    }

    /// Events still available.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::Relaxed)
    }

    /// Events charged so far, net of refunds — across every run sharing
    /// this pool, this is exactly the number of events simulated.
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.initial - self.remaining()
    }

    /// True when the pool can no longer fund a full charge block — the
    /// next run attached to it is guaranteed to stop immediately with a
    /// [`BudgetKind::Pool`] failure. This is the admission test (e.g. the
    /// sweep service refusing a spent tenant's submission): `remaining()`
    /// rarely hits exactly zero because charges are block-granular and
    /// settlement refunds the unused tail.
    #[must_use]
    pub fn depleted(&self) -> bool {
        self.remaining() < Self::BLOCK
    }

    /// Try to charge `n` events. All-or-nothing: on success the pool
    /// shrinks by `n` and `true` is returned; a pool with fewer than `n`
    /// events left is untouched and the charge is refused.
    #[must_use]
    pub fn try_charge(&self, n: u64) -> bool {
        let mut cur = self.remaining.load(Ordering::Relaxed);
        loop {
            if cur < n {
                return false;
            }
            match self.remaining.compare_exchange_weak(
                cur,
                cur - n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Return `n` unused events to the pool (end-of-run settlement).
    pub fn refund(&self, n: u64) {
        self.remaining.fetch_add(n, Ordering::Relaxed);
    }
}

impl PartialEq for EventPool {
    /// Two pools are equal when they are the *same* pool (shared
    /// allowance), matching `SimConfig`'s structural equality.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.remaining, &other.remaining)
    }
}

/// Hard ceilings for one simulation run. The default budget allows
/// [`RunBudget::DEFAULT_MAX_EVENTS`] events and is otherwise unlimited —
/// generous enough for every paper-fidelity experiment (which needs on the
/// order of 10⁸ events at its most contended point) while still
/// terminating a zero-progress livelock in minutes rather than never.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunBudget {
    /// Maximum calendar events the engine may process (`None` = unlimited).
    pub max_events: Option<u64>,
    /// Maximum simulated time the run may reach (`None` = unlimited; the
    /// batch horizon already bounds healthy runs, so this mainly guards
    /// misconfigured metrics).
    pub max_sim_time: Option<SimDuration>,
    /// Maximum wall-clock time for the run (`None` = unlimited).
    /// Host-dependent — see the module docs.
    pub max_wall_clock: Option<Duration>,
}

impl RunBudget {
    /// Default event ceiling: ~10× the busiest paper-fidelity run.
    pub const DEFAULT_MAX_EVENTS: u64 = 2_000_000_000;

    /// A budget with no ceilings at all (pre-budget behavior).
    #[must_use]
    pub const fn unlimited() -> Self {
        RunBudget {
            max_events: None,
            max_sim_time: None,
            max_wall_clock: None,
        }
    }

    /// Builder-style event-ceiling replacement.
    #[must_use]
    pub const fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Builder-style simulated-time-ceiling replacement.
    #[must_use]
    pub const fn with_max_sim_time(mut self, max_sim_time: SimDuration) -> Self {
        self.max_sim_time = Some(max_sim_time);
        self
    }

    /// Builder-style wall-clock-ceiling replacement.
    #[must_use]
    pub const fn with_max_wall_clock(mut self, max_wall_clock: Duration) -> Self {
        self.max_wall_clock = Some(max_wall_clock);
        self
    }
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget {
            max_events: Some(Self::DEFAULT_MAX_EVENTS),
            max_sim_time: None,
            max_wall_clock: None,
        }
    }
}

/// Which ceiling of a [`RunBudget`] a run exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The event ceiling (`max_events`).
    Events,
    /// The simulated-time ceiling (`max_sim_time`).
    SimTime,
    /// The wall-clock ceiling (`max_wall_clock`).
    WallClock,
    /// The shared [`EventPool`] attached to the run was depleted.
    Pool,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetKind::Events => "event",
            BudgetKind::SimTime => "simulated-time",
            BudgetKind::WallClock => "wall-clock",
            BudgetKind::Pool => "shared-pool",
        })
    }
}

/// Why a simulation run failed to produce a report.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The configuration failed validation before the run started.
    InvalidConfig(ParamError),
    /// The run exceeded its [`RunBudget`] and was terminated. `events`,
    /// `sim_time`, and `wall_clock` record where it stopped; the first two
    /// are deterministic for a given configuration, `wall_clock` is not.
    BudgetExhausted {
        /// The ceiling that was exceeded.
        exceeded: BudgetKind,
        /// Events processed when the run stopped.
        events: u64,
        /// Simulated instant the run had reached.
        sim_time: SimTime,
        /// Wall-clock time elapsed since the run started.
        wall_clock: Duration,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            RunError::BudgetExhausted {
                exceeded,
                events,
                sim_time,
                wall_clock,
            } => write!(
                f,
                "run budget exhausted ({exceeded} ceiling) after {events} events, \
                 sim time {sim_time}, {:.1}s wall clock",
                wall_clock.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::InvalidConfig(e) => Some(e),
            RunError::BudgetExhausted { .. } => None,
        }
    }
}

impl From<ParamError> for RunError {
    fn from(e: ParamError) -> Self {
        RunError::InvalidConfig(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_caps_events_only() {
        let b = RunBudget::default();
        assert_eq!(b.max_events, Some(RunBudget::DEFAULT_MAX_EVENTS));
        assert_eq!(b.max_sim_time, None);
        assert_eq!(b.max_wall_clock, None);
        assert_eq!(RunBudget::unlimited().max_events, None);
    }

    #[test]
    fn builders_set_each_ceiling() {
        let b = RunBudget::unlimited()
            .with_max_events(10)
            .with_max_sim_time(SimDuration::from_secs(5))
            .with_max_wall_clock(Duration::from_secs(1));
        assert_eq!(b.max_events, Some(10));
        assert_eq!(b.max_sim_time, Some(SimDuration::from_secs(5)));
        assert_eq!(b.max_wall_clock, Some(Duration::from_secs(1)));
    }

    #[test]
    fn event_pool_charges_refunds_and_refuses() {
        let pool = EventPool::new(10_000);
        assert!(!pool.depleted());
        assert!(pool.try_charge(EventPool::BLOCK));
        assert_eq!(pool.remaining(), 10_000 - EventPool::BLOCK);
        // Next full block exceeds what's left: refused, pool untouched,
        // and the pool now reports itself depleted for admission checks.
        assert!(!pool.try_charge(EventPool::BLOCK));
        assert_eq!(pool.remaining(), 10_000 - EventPool::BLOCK);
        assert!(pool.depleted());
        pool.refund(100);
        assert_eq!(pool.consumed(), EventPool::BLOCK - 100);
        // Clones share the same allowance.
        let alias = pool.clone();
        assert!(alias.try_charge(1));
        assert_eq!(pool.remaining(), alias.remaining());
        assert_eq!(pool, alias);
        assert_ne!(pool, EventPool::new(10_000));
    }

    #[test]
    fn event_pool_charges_exactly_under_contention() {
        // The worker-lane safety contract: concurrent block charges from
        // many threads are all-or-nothing and never lose or double-spend
        // events. 8 threads race to drain a pool holding exactly 500
        // blocks; exactly 500 charges must succeed.
        const BLOCKS: u64 = 500;
        let pool = EventPool::new(BLOCKS * EventPool::BLOCK);
        let granted: AtomicU64 = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    while pool.try_charge(EventPool::BLOCK) {
                        granted.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(granted.load(Ordering::Relaxed), BLOCKS);
        assert_eq!(pool.remaining(), 0);
        assert_eq!(pool.consumed(), BLOCKS * EventPool::BLOCK);
        assert!(pool.depleted());
        // Refunds from settlement reopen admission at the same threshold.
        pool.refund(EventPool::BLOCK);
        assert!(!pool.depleted());
    }

    #[test]
    fn errors_render_their_cause() {
        let e = RunError::BudgetExhausted {
            exceeded: BudgetKind::Events,
            events: 42,
            sim_time: SimTime::from_secs(3),
            wall_clock: Duration::from_millis(1500),
        };
        let msg = e.to_string();
        assert!(msg.contains("event ceiling"), "{msg}");
        assert!(msg.contains("42 events"), "{msg}");
        let v = RunError::from(ParamError("mpl must be positive".into()));
        assert!(v.to_string().contains("invalid configuration"));
    }
}
