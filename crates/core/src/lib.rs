//! `ccsim-core` — the closed queuing model of Agrawal, Carey & Livny's
//! *"Models for Studying Concurrency Control Performance: Alternatives and
//! Implications"* (SIGMOD 1985), with pluggable concurrency control.
//!
//! The model (paper Figures 1–2): a fixed set of terminals submits
//! transactions; at most `mpl` are *active* at once (the rest wait in the
//! ready queue); active transactions alternate concurrency-control requests
//! with object accesses, may block or restart on conflict, write deferred
//! updates at commit, and return to their terminal for an external think
//! time. Underneath sit a pooled CPU resource and a partitioned disk array
//! (or the idealized *infinite resources* assumption).
//!
//! # Quick start
//!
//! ```
//! use ccsim_core::{run, CcAlgorithm, MetricsConfig, SimConfig};
//!
//! let cfg = SimConfig::new(CcAlgorithm::Blocking)
//!     .with_metrics(MetricsConfig::quick())
//!     .with_seed(7);
//! let report = run(cfg).expect("valid configuration");
//! assert!(report.throughput.mean > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod algorithm;
mod arena;
mod budget;
mod config;
mod engine;
mod metrics;
mod parallel;
mod profiler;
mod sink;
mod trace;
mod txn;

pub use algorithm::{CcAlgorithm, VictimPolicy};
pub use arena::{TxnArena, TxnRec};
pub use budget::{BudgetKind, EventPool, RunBudget, RunError};
pub use config::{MetricsConfig, SimConfig};
pub use engine::{
    run, run_collecting, run_with_history, run_with_perf, run_with_trace, PerfStats, RunOutcome,
    Simulator,
};
pub use metrics::{ClassReport, Metrics, Report, StreamingQuantiles};
pub use parallel::{ParallelStats, MAX_LANES};
pub use profiler::{Stage, StageProfile, StageSample, STAGE_COUNT, STAGE_PROFILER_COMPILED};
pub use sink::{CenterFlow, EventSink, FlowStats};
pub use trace::{Trace, TraceEvent};
pub use txn::{AttemptUsage, Program, ProgramShape, Step, TxnState};

// Re-export the vocabulary types callers need to configure runs.
pub use ccsim_history::{
    check_conflict_serializable, check_snapshot_isolation, CommittedTxn, History, SiReport,
    SiViolation,
};
pub use ccsim_lockmgr::LockMode;
pub use ccsim_stats::{Confidence, Estimate};
pub use ccsim_workload::{
    AccessPattern, ObjId, ParamError, Params, ResourceSpec, RestartDelayPolicy, TermId, TxnId,
};
