//! Concurrency control strategy selection.

use std::fmt;

/// The concurrency control algorithms the simulator implements.
///
/// The first three are the paper's subjects — chosen as extremes in *when*
/// conflicts are detected (access time vs. commit time) and *how* they are
/// resolved (blocking vs. restarts). The remaining three are extensions that
/// fit the same framework and are used in the ablation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcAlgorithm {
    /// Dynamic two-phase locking: block on conflict, detect deadlocks via a
    /// waits-for graph at each block, restart the youngest transaction in
    /// the cycle (paper §2, "Blocking").
    Blocking,
    /// Lock, but abort-and-restart the requester on any denial, after an
    /// adaptive restart delay (paper §2, "Immediate-Restart").
    ImmediateRestart,
    /// Kung–Robinson style optimistic concurrency control: run unhindered,
    /// validate the readset at commit point, restart on conflict with a
    /// transaction that committed during the attempt's lifetime (paper §2,
    /// "Optimistic").
    Optimistic,
    /// Extension: wait-die deadlock *prevention* — an older requester waits
    /// for a younger holder; a younger requester dies (restarts keeping its
    /// original timestamp).
    WaitDie,
    /// Extension: wound-wait deadlock prevention — an older requester
    /// wounds (aborts) younger holders; a younger requester waits.
    WoundWait,
    /// Extension: no-waiting locking — immediate-restart without the
    /// restart delay (restart the requester at once on any denial).
    NoWaiting,
    /// Extension: static (conservative) two-phase locking — every lock is
    /// acquired before the first access, in a global object order, which
    /// makes deadlock impossible. The discipline of the Ries/Stonebraker
    /// models this paper's simulator descends from.
    StaticLocking,
    /// Extension: basic timestamp ordering (Bernstein–Goodman) — operations
    /// execute in timestamp order per object; late operations restart the
    /// transaction with a fresh timestamp, and readers wait out pending
    /// smaller-timestamp prewrites. The algorithm family of the
    /// `[Gall82]`/`[Lin83]` studies the paper reconciles.
    BasicTO,
    /// Extension: **no concurrency control at all** — transactions run
    /// completely unhindered and always commit. This is *unsafe* (it admits
    /// non-serializable executions, which `ccsim-history` can demonstrate)
    /// and exists purely as the data-contention-free upper bound on
    /// throughput.
    NoCc,
    /// Modern extension: multiversion concurrency control under snapshot
    /// isolation (Larson et al. style) — every read sees the database as of
    /// the attempt's start, writers never block readers, and the commit
    /// point enforces first-committer-wins on the write set. Admits the
    /// classic SI anomalies (write skew), which the history oracle detects
    /// and counts rather than hides.
    MvccSi,
    /// Modern extension: Silo-style epoch-based optimistic concurrency
    /// control — reads record a per-object TID word, validation at the
    /// commit point checks every recorded word is unchanged, and committed
    /// transactions take epoch-batched transaction ids (serializable).
    SiloOcc,
    /// Modern extension: TicToc-style timestamp recomputation — each access
    /// carries a read/write timestamp interval and the commit point *derives*
    /// a commit timestamp inside every interval instead of rejecting on
    /// physical-time order, aborting only when no such timestamp exists
    /// (serializable).
    TicToc,
}

impl CcAlgorithm {
    /// The paper's three algorithms, in its plotting order.
    pub const PAPER_TRIO: [CcAlgorithm; 3] = [
        CcAlgorithm::Blocking,
        CcAlgorithm::ImmediateRestart,
        CcAlgorithm::Optimistic,
    ];

    /// All *safe* algorithms (everything but the deliberately unsafe
    /// [`CcAlgorithm::NoCc`] baseline).
    pub const ALL: [CcAlgorithm; 11] = [
        CcAlgorithm::Blocking,
        CcAlgorithm::ImmediateRestart,
        CcAlgorithm::Optimistic,
        CcAlgorithm::WaitDie,
        CcAlgorithm::WoundWait,
        CcAlgorithm::NoWaiting,
        CcAlgorithm::StaticLocking,
        CcAlgorithm::BasicTO,
        CcAlgorithm::MvccSi,
        CcAlgorithm::SiloOcc,
        CcAlgorithm::TicToc,
    ];

    /// The three modern in-memory protocols (the 2020s sequel series to the
    /// paper trio), in plotting order.
    pub const MODERN_TRIO: [CcAlgorithm; 3] = [
        CcAlgorithm::MvccSi,
        CcAlgorithm::SiloOcc,
        CcAlgorithm::TicToc,
    ];

    /// Does the algorithm use the lock manager? (Timestamp ordering has
    /// concurrency-control steps but no locks.)
    #[must_use]
    pub fn uses_locks(self) -> bool {
        !matches!(
            self,
            CcAlgorithm::Optimistic
                | CcAlgorithm::NoCc
                | CcAlgorithm::BasicTO
                | CcAlgorithm::MvccSi
                | CcAlgorithm::SiloOcc
                | CcAlgorithm::TicToc
        )
    }

    /// The transaction program shape this algorithm executes.
    #[must_use]
    pub fn program_shape(self) -> crate::txn::ProgramShape {
        use crate::txn::ProgramShape;
        match self {
            CcAlgorithm::Optimistic
            | CcAlgorithm::NoCc
            | CcAlgorithm::MvccSi
            | CcAlgorithm::SiloOcc
            | CcAlgorithm::TicToc => ProgramShape::LockFree,
            CcAlgorithm::StaticLocking => ProgramShape::Static2pl,
            _ => ProgramShape::Dynamic2pl,
        }
    }

    /// Does the algorithm inherently delay restarted transactions?
    /// Immediate-restart must, "otherwise the same lock conflict will occur
    /// repeatedly" (paper §2); the others don't need to — blocking's
    /// deadlock cannot recur and optimistic conflicts are with already
    /// committed transactions.
    #[must_use]
    pub fn uses_restart_delay(self) -> bool {
        matches!(self, CcAlgorithm::ImmediateRestart)
    }

    /// Short label used in reports and plots.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CcAlgorithm::Blocking => "blocking",
            CcAlgorithm::ImmediateRestart => "immediate-restart",
            CcAlgorithm::Optimistic => "optimistic",
            CcAlgorithm::WaitDie => "wait-die",
            CcAlgorithm::WoundWait => "wound-wait",
            CcAlgorithm::NoWaiting => "no-waiting",
            CcAlgorithm::StaticLocking => "static-locking",
            CcAlgorithm::BasicTO => "basic-to",
            CcAlgorithm::NoCc => "no-cc",
            CcAlgorithm::MvccSi => "mvcc-si",
            CcAlgorithm::SiloOcc => "silo-occ",
            CcAlgorithm::TicToc => "tictoc",
        }
    }
}

impl fmt::Display for CcAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How the blocking algorithm picks a deadlock victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimPolicy {
    /// Restart the youngest transaction in the cycle — latest original
    /// arrival time (the paper's choice).
    #[default]
    Youngest,
    /// Restart the oldest transaction in the cycle.
    Oldest,
    /// Restart the transaction holding the fewest locks (least work lost,
    /// approximately).
    FewestLocks,
}

impl VictimPolicy {
    /// All victim policies (for the ablation bench).
    pub const ALL: [VictimPolicy; 3] = [
        VictimPolicy::Youngest,
        VictimPolicy::Oldest,
        VictimPolicy::FewestLocks,
    ];

    /// Label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            VictimPolicy::Youngest => "youngest",
            VictimPolicy::Oldest => "oldest",
            VictimPolicy::FewestLocks => "fewest-locks",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cc_is_excluded_from_all() {
        assert!(!CcAlgorithm::ALL.contains(&CcAlgorithm::NoCc));
        assert!(!CcAlgorithm::NoCc.uses_locks());
        assert!(!CcAlgorithm::NoCc.uses_restart_delay());
        assert_eq!(CcAlgorithm::NoCc.label(), "no-cc");
    }

    #[test]
    fn lock_usage() {
        assert!(CcAlgorithm::Blocking.uses_locks());
        assert!(CcAlgorithm::ImmediateRestart.uses_locks());
        assert!(CcAlgorithm::WaitDie.uses_locks());
        assert!(CcAlgorithm::WoundWait.uses_locks());
        assert!(CcAlgorithm::NoWaiting.uses_locks());
        assert!(CcAlgorithm::StaticLocking.uses_locks());
        assert!(!CcAlgorithm::Optimistic.uses_locks());
        assert!(!CcAlgorithm::BasicTO.uses_locks());
        assert_eq!(
            CcAlgorithm::BasicTO.program_shape(),
            crate::txn::ProgramShape::Dynamic2pl
        );
        for a in CcAlgorithm::MODERN_TRIO {
            assert!(!a.uses_locks(), "{a} must not use the lock manager");
            assert!(!a.uses_restart_delay());
            assert_eq!(a.program_shape(), crate::txn::ProgramShape::LockFree);
        }
    }

    #[test]
    fn delay_usage() {
        assert!(CcAlgorithm::ImmediateRestart.uses_restart_delay());
        assert!(!CcAlgorithm::Blocking.uses_restart_delay());
        assert!(!CcAlgorithm::Optimistic.uses_restart_delay());
        assert!(!CcAlgorithm::NoWaiting.uses_restart_delay());
    }

    #[test]
    fn labels_are_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<&str> = CcAlgorithm::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), CcAlgorithm::ALL.len());
        assert_eq!(CcAlgorithm::Blocking.to_string(), "blocking");
    }

    #[test]
    fn trio_is_subset_of_all() {
        for a in CcAlgorithm::PAPER_TRIO {
            assert!(CcAlgorithm::ALL.contains(&a));
        }
    }

    #[test]
    fn modern_trio_is_subset_of_all() {
        for a in CcAlgorithm::MODERN_TRIO {
            assert!(CcAlgorithm::ALL.contains(&a));
            assert!(!CcAlgorithm::PAPER_TRIO.contains(&a));
        }
        assert_eq!(CcAlgorithm::MvccSi.label(), "mvcc-si");
        assert_eq!(CcAlgorithm::SiloOcc.label(), "silo-occ");
        assert_eq!(CcAlgorithm::TicToc.label(), "tictoc");
    }
}
