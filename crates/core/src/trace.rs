//! Structured execution tracing.
//!
//! When enabled (the `trace_capacity` field of [`crate::SimConfig`]), the engine
//! appends one typed [`TraceEvent`] per interesting state transition to a
//! bounded ring buffer. Traces make the model's behaviour inspectable —
//! which transaction blocked on which object, who was picked as a deadlock
//! victim, when validation failed — without attaching a debugger to a
//! discrete-event simulation.
//!
//! The buffer is bounded ([`Trace::with_capacity`]) so tracing long runs
//! keeps the *last* N events; tests and examples use small horizons where
//! nothing is dropped.

use std::collections::VecDeque;
use std::fmt;

use ccsim_des::SimTime;
use ccsim_lockmgr::LockMode;
use ccsim_workload::{ObjId, TxnId};

fn mode_str(mode: LockMode) -> &'static str {
    match mode {
        LockMode::Read => "read",
        LockMode::Write => "write",
    }
}

/// One traced state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A terminal submitted a new transaction.
    Arrive(TxnId),
    /// A transaction was admitted into the active set (attempt start).
    Admit(TxnId),
    /// A lock request was granted immediately (no queueing). Also covers
    /// in-place read→write upgrades.
    Acquire(TxnId, ObjId, LockMode),
    /// A lock request blocked on an object (or, under basic T/O, a read
    /// parked on a pending smaller-timestamp prewrite).
    Block(TxnId, ObjId),
    /// A queued lock request was granted (or a parked basic-T/O read
    /// resumed; the resumed read is then re-checked, so it may block again).
    Grant(TxnId, ObjId, LockMode),
    /// A deadlock was detected and a victim chosen.
    Deadlock {
        /// The transaction whose block completed the cycle.
        detector: TxnId,
        /// The transaction chosen for restart.
        victim: TxnId,
    },
    /// A transaction was aborted and will retry.
    Restart(TxnId),
    /// An optimistic validation failed against a committed writer.
    ValidationFailure(TxnId, ObjId),
    /// A basic-T/O operation arrived too late and was rejected.
    TsRejected(TxnId, ObjId),
    /// A transaction committed.
    Commit(TxnId),
    /// All locks of a terminating transaction were released (`n` distinct
    /// objects). Emitted immediately after `Commit`/`Restart` by every
    /// lock-using algorithm; the count lets an auditor cross-check its own
    /// event-derived holdings against the lock manager's.
    LocksReleased(TxnId, u32),
    /// A committing multiversion transaction installed `n` new versions
    /// (one per written object; 0 for read-only commits). Emitted
    /// immediately after `Commit` under MVCC snapshot isolation — the
    /// multiversion analogue of `LocksReleased`, letting the auditor
    /// cross-check version installation against the write set.
    VersionInstalled(TxnId, u32),
}

impl TraceEvent {
    /// The transaction the event is about (the detector for deadlocks).
    #[must_use]
    pub fn txn(&self) -> TxnId {
        match *self {
            TraceEvent::Arrive(t)
            | TraceEvent::Admit(t)
            | TraceEvent::Acquire(t, _, _)
            | TraceEvent::Block(t, _)
            | TraceEvent::Grant(t, _, _)
            | TraceEvent::Restart(t)
            | TraceEvent::ValidationFailure(t, _)
            | TraceEvent::TsRejected(t, _)
            | TraceEvent::Commit(t)
            | TraceEvent::LocksReleased(t, _)
            | TraceEvent::VersionInstalled(t, _) => t,
            TraceEvent::Deadlock { detector, .. } => detector,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Arrive(t) => write!(f, "{t} arrives"),
            TraceEvent::Admit(t) => write!(f, "{t} admitted"),
            TraceEvent::Acquire(t, o, m) => write!(f, "{t} acquires {o} ({})", mode_str(m)),
            TraceEvent::Block(t, o) => write!(f, "{t} blocks on {o}"),
            TraceEvent::Grant(t, o, m) => write!(f, "{t} granted {o} ({})", mode_str(m)),
            TraceEvent::Deadlock { detector, victim } => {
                write!(f, "deadlock via {detector}; victim {victim}")
            }
            TraceEvent::Restart(t) => write!(f, "{t} restarts"),
            TraceEvent::ValidationFailure(t, o) => {
                write!(f, "{t} fails validation on {o}")
            }
            TraceEvent::TsRejected(t, o) => {
                write!(f, "{t} rejected by timestamp order on {o}")
            }
            TraceEvent::Commit(t) => write!(f, "{t} commits"),
            TraceEvent::LocksReleased(t, n) => write!(f, "{t} releases {n} lock(s)"),
            TraceEvent::VersionInstalled(t, n) => write!(f, "{t} installs {n} version(s)"),
        }
    }
}

/// A bounded, timestamped event log.
#[derive(Debug, Clone)]
pub struct Trace {
    events: VecDeque<(SimTime, TraceEvent)>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A trace retaining at most `capacity` most-recent events. A capacity
    /// of zero disables recording entirely: pushes are no-ops (nothing is
    /// retained and nothing is counted as dropped).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Append an event at `now`.
    pub fn push(&mut self, now: SimTime, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((now, event));
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted due to the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All retained events concerning one transaction, oldest first.
    #[must_use]
    pub fn for_txn(&self, txn: TxnId) -> Vec<(SimTime, TraceEvent)> {
        self.events
            .iter()
            .filter(|(_, e)| e.txn() == txn)
            .copied()
            .collect()
    }

    /// Render the trace as one line per event.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier events dropped ...", self.dropped);
        }
        for (at, e) in &self.events {
            let _ = writeln!(out, "[{at}] {e}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u64) -> TxnId {
        TxnId(v)
    }
    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_in_order() {
        let mut tr = Trace::with_capacity(10);
        tr.push(at(1), TraceEvent::Arrive(t(1)));
        tr.push(at(2), TraceEvent::Admit(t(1)));
        tr.push(at(3), TraceEvent::Commit(t(1)));
        assert_eq!(tr.len(), 3);
        let kinds: Vec<TraceEvent> = tr.events().map(|&(_, e)| e).collect();
        assert_eq!(
            kinds,
            vec![
                TraceEvent::Arrive(t(1)),
                TraceEvent::Admit(t(1)),
                TraceEvent::Commit(t(1))
            ]
        );
    }

    #[test]
    fn capacity_bound_keeps_latest() {
        let mut tr = Trace::with_capacity(2);
        tr.push(at(1), TraceEvent::Arrive(t(1)));
        tr.push(at(2), TraceEvent::Arrive(t(2)));
        tr.push(at(3), TraceEvent::Arrive(t(3)));
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.dropped(), 1);
        let first = tr.events().next().unwrap();
        assert_eq!(first.1, TraceEvent::Arrive(t(2)));
    }

    #[test]
    fn per_txn_filter() {
        let mut tr = Trace::with_capacity(10);
        tr.push(at(1), TraceEvent::Arrive(t(1)));
        tr.push(at(1), TraceEvent::Arrive(t(2)));
        tr.push(at(2), TraceEvent::Block(t(1), ObjId(9)));
        tr.push(
            at(3),
            TraceEvent::Deadlock {
                detector: t(1),
                victim: t(2),
            },
        );
        let mine = tr.for_txn(t(1));
        assert_eq!(mine.len(), 3);
        assert_eq!(tr.for_txn(t(2)).len(), 1);
    }

    #[test]
    fn render_includes_drop_marker() {
        let mut tr = Trace::with_capacity(1);
        tr.push(at(1), TraceEvent::Commit(t(1)));
        tr.push(at(2), TraceEvent::Commit(t(2)));
        let text = tr.render();
        assert!(text.contains("1 earlier events dropped"));
        assert!(text.contains("txn2 commits"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            TraceEvent::Block(t(3), ObjId(7)).to_string(),
            "txn3 blocks on obj7"
        );
        assert_eq!(
            TraceEvent::Deadlock {
                detector: t(1),
                victim: t(2)
            }
            .to_string(),
            "deadlock via txn1; victim txn2"
        );
        assert_eq!(
            TraceEvent::ValidationFailure(t(4), ObjId(2)).to_string(),
            "txn4 fails validation on obj2"
        );
        assert_eq!(
            TraceEvent::Acquire(t(5), ObjId(3), LockMode::Write).to_string(),
            "txn5 acquires obj3 (write)"
        );
        assert_eq!(
            TraceEvent::Grant(t(5), ObjId(3), LockMode::Read).to_string(),
            "txn5 granted obj3 (read)"
        );
        assert_eq!(
            TraceEvent::TsRejected(t(6), ObjId(1)).to_string(),
            "txn6 rejected by timestamp order on obj1"
        );
        assert_eq!(
            TraceEvent::LocksReleased(t(7), 4).to_string(),
            "txn7 releases 4 lock(s)"
        );
        assert_eq!(
            TraceEvent::VersionInstalled(t(8), 2).to_string(),
            "txn8 installs 2 version(s)"
        );
        assert_eq!(TraceEvent::VersionInstalled(t(8), 2).txn(), t(8));
    }

    #[test]
    fn capacity_n_retains_exactly_last_n_in_order() {
        for capacity in [1usize, 2, 3, 7] {
            let mut tr = Trace::with_capacity(capacity);
            let total = 10u64;
            for i in 0..total {
                tr.push(at(i), TraceEvent::Arrive(t(i)));
            }
            assert_eq!(tr.len(), capacity.min(total as usize));
            assert_eq!(tr.dropped(), total - capacity as u64);
            let kept: Vec<u64> = tr
                .events()
                .map(|&(_, e)| match e {
                    TraceEvent::Arrive(TxnId(v)) => v,
                    other => panic!("unexpected event {other:?}"),
                })
                .collect();
            let expected: Vec<u64> = (total - capacity as u64..total).collect();
            assert_eq!(kept, expected, "capacity {capacity}");
        }
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let mut tr = Trace::with_capacity(0);
        for i in 0..5 {
            tr.push(at(i), TraceEvent::Commit(t(i)));
        }
        assert_eq!(tr.len(), 0);
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 0, "a disabled trace counts nothing");
        assert!(tr.render().is_empty());
        assert!(tr.for_txn(t(0)).is_empty());
    }
}
