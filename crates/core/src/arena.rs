//! Arena/SoA storage for per-terminal transaction state.
//!
//! The engine keeps one transaction record per terminal. With `num_terms`
//! up to 10^6 (the `exp-scale` regime), the old layout — a `Vec<Option<Txn>>`
//! where every `Txn` owned five small heap vectors (readset, write flags,
//! write objects, static lock plan, read times) — fragmented the heap into
//! millions of tiny allocations. This arena replaces it:
//!
//! * [`TxnRec`] is the fixed-width per-terminal record (program counter,
//!   lifecycle state, timestamps, usage counters), stored in one flat
//!   `Vec<TxnRec>`.
//! * The variable-length per-transaction data lives in shared flat arrays
//!   of `num_terms × cap` elements, where `cap` is the largest readset any
//!   workload class can draw; terminal `t` owns the slice
//!   `[t*cap, (t+1)*cap)`. The static-locking plan and the history-only
//!   read-times arrays are allocated lazily on first use, so runs that
//!   need neither pay nothing.
//!
//! Installing a new transaction copies its [`TxnSpec`] into the terminal's
//! region; the spec's own buffers are recycled by the engine through the
//! generator exactly as before, so the RNG draw sequence — and therefore
//! every golden trace — is untouched by the layout change.
//!
//! Stepping through a program is the single hottest operation in the
//! engine, and the arithmetic [`Program::step_at`] decode it used to do
//! per advance is a div/mod chain with data-dependent branches. The arena
//! therefore keeps a [`ProgramTable`]: every *distinct* program (keyed by
//! shape, think flag, read count, write count — a few dozen per run) is
//! decoded once into a shared flat `Vec<Step>`, each record stores its
//! program's offset, and [`TxnArena::advance`] is a single indexed load.
//! The table is a pure cache of `step_at`'s output, so the step sequence —
//! and every simulation output — is byte-identical to the decoded path
//! (debug builds assert the equivalence on every advance).

use ccsim_des::SimTime;
use ccsim_workload::{ObjId, TxnId, TxnSpec};

use crate::txn::{AttemptUsage, Program, ProgramShape, Step, TxnState};

/// Fixed-width runtime record of one terminal's current transaction.
///
/// Field semantics are identical to the pre-arena `Txn` struct; the
/// variable-length data (readset, write objects, lock plan, read times)
/// lives in the owning [`TxnArena`]'s shared arrays instead.
#[derive(Debug, Clone)]
pub struct TxnRec {
    /// Globally unique id (preserved across restarts of the transaction).
    pub id: TxnId,
    /// The access program shape (kept across restarts — paper footnote 1).
    pub program: Program,
    /// Program counter into [`Program::step_at`].
    pub pc: usize,
    /// The decoded step at `pc`, kept in sync by `advance`/`begin_attempt`.
    cur: Step,
    /// Lifecycle state.
    pub state: TxnState,
    /// When this transaction first entered the ready queue.
    pub arrival: SimTime,
    /// When the current attempt was admitted (the optimistic start time).
    pub attempt_start: SimTime,
    /// Attempt epoch, bumped on every restart; stale events are dropped by
    /// comparing epochs.
    pub epoch: u32,
    /// Resource usage of the current attempt.
    pub usage: AttemptUsage,
    /// Times this transaction blocked (across all attempts).
    pub blocks: u32,
    /// Times this transaction restarted.
    pub restarts: u32,
    /// True while a concurrency-control CPU charge is in flight.
    pub cc_charged: bool,
    /// When this attempt's writes were (will be) published.
    pub publish_at: Option<SimTime>,
    /// Workload class index (0 = the primary Table-1 class).
    pub class: usize,
    /// Offset of this record's decoded program in the arena's
    /// [`ProgramTable`] (`TxnArena::advance` reads `steps[prog_base + pc]`).
    prog_base: u32,
    /// Readset length (valid prefix of the terminal's `reads` region).
    n_reads: u32,
    /// Write-set length (valid prefix of the `write_objs` region).
    n_writes: u32,
    /// Read-times length (valid prefix of the `read_times` region).
    n_read_times: u32,
    /// False until the terminal's first arrival installs a transaction.
    live: bool,
}

impl TxnRec {
    /// The step the transaction is currently at.
    #[must_use]
    pub fn step(&self) -> Step {
        self.cur
    }

    /// Advance to the next step.
    pub fn advance(&mut self) {
        self.pc += 1;
        self.cur = self.program.step_at(self.pc);
        self.cc_charged = false;
    }

    /// Rewind for a fresh attempt after a restart.
    pub fn begin_attempt(&mut self, now: SimTime) {
        self.pc = 0;
        self.cur = self.program.step_at(0);
        self.cc_charged = false;
        self.attempt_start = now;
        self.usage.reset();
        self.n_read_times = 0;
        self.publish_at = None;
    }

    /// Bump the epoch (called at restart so stale events are ignored).
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    fn vacant() -> Self {
        TxnRec {
            id: TxnId(0),
            program: Program::new(ProgramShape::LockFree, false, 1, 0),
            pc: 0,
            cur: Step::ReadIo(0),
            state: TxnState::AtTerminal,
            arrival: SimTime::ZERO,
            attempt_start: SimTime::ZERO,
            epoch: 0,
            usage: AttemptUsage::default(),
            blocks: 0,
            restarts: 0,
            cc_charged: false,
            publish_at: None,
            class: 0,
            prog_base: 0,
            n_reads: 0,
            n_writes: 0,
            n_read_times: 0,
            live: false,
        }
    }
}

/// Cache of decoded step programs shared by every terminal (see the module
/// docs). Within one run the shape/think key is constant, so the index is
/// a dense `(reads, writes)` grid; a key change (tests only) resets it.
#[derive(Debug, Default)]
struct ProgramTable {
    /// Shape/think flag the cached entries were decoded under.
    key: Option<(ProgramShape, bool)>,
    /// `(reads, writes) → offset into steps`; `ABSENT` = not yet decoded.
    index: Vec<u32>,
    /// Index row width (`cap + 1`: reads and writes both range `0..=cap`).
    stride: usize,
    /// Every distinct decoded program, concatenated.
    steps: Vec<Step>,
}

impl ProgramTable {
    const ABSENT: u32 = u32::MAX;

    /// The offset of `program`'s decoded steps, decoding it on first sight.
    fn ensure(&mut self, shape: ProgramShape, thinks: bool, cap: usize, program: Program) -> u32 {
        let stride = cap + 1;
        if self.key != Some((shape, thinks)) || self.stride != stride {
            self.key = Some((shape, thinks));
            self.stride = stride;
            self.index.clear();
            self.index.resize(stride * stride, Self::ABSENT);
            self.steps.clear();
        }
        let slot = program.num_reads() * stride + program.num_writes();
        let mut base = self.index[slot];
        if base == Self::ABSENT {
            base = u32::try_from(self.steps.len()).expect("program table overflow");
            self.steps
                .extend((0..program.len()).map(|pc| program.step_at(pc)));
            self.index[slot] = base;
        }
        base
    }
}

/// The arena: per-terminal records plus shared flat data regions.
#[derive(Debug)]
pub struct TxnArena {
    /// Per-terminal region width: the largest readset any class can draw.
    cap: usize,
    recs: Vec<TxnRec>,
    /// Readsets, in access order: terminal `t` owns `[t*cap, (t+1)*cap)`.
    reads: Vec<ObjId>,
    /// Written objects, in write (= read) order; same regioning.
    write_objs: Vec<ObjId>,
    /// Static-locking preclaim plans `(object, write?)` in ascending object
    /// order. Empty unless some transaction runs `Static2pl`.
    lock_plan: Vec<(ObjId, bool)>,
    /// Read-completion times (history recording only). Empty until first use.
    read_times: Vec<SimTime>,
    /// Observed validity bounds (`rts` at read time), parallel to
    /// `read_times`. TicToc only; empty until first use.
    read_auxes: Vec<SimTime>,
    /// Decoded-program cache backing [`TxnArena::advance`].
    programs: ProgramTable,
}

impl TxnArena {
    /// An arena for `num_terms` terminals whose transactions read at most
    /// `cap` objects.
    #[must_use]
    pub fn new(num_terms: usize, cap: usize) -> Self {
        let cap = cap.max(1);
        TxnArena {
            cap,
            recs: vec![TxnRec::vacant(); num_terms],
            reads: vec![ObjId(0); num_terms * cap],
            write_objs: vec![ObjId(0); num_terms * cap],
            lock_plan: Vec::new(),
            read_times: Vec::new(),
            read_auxes: Vec::new(),
            programs: ProgramTable::default(),
        }
    }

    /// Advance `term`'s transaction to its next step. Hot-path equivalent
    /// of [`TxnRec::advance`]: the step comes from the decoded-program
    /// table as one indexed load instead of the arithmetic decode.
    #[inline]
    pub fn advance(&mut self, term: usize) {
        let rec = &mut self.recs[term];
        rec.pc += 1;
        rec.cur = self.programs.steps[rec.prog_base as usize + rec.pc];
        rec.cc_charged = false;
        debug_assert_eq!(
            rec.cur,
            rec.program.step_at(rec.pc),
            "program table diverged from step_at"
        );
    }

    /// Number of terminals.
    #[must_use]
    pub fn num_terms(&self) -> usize {
        self.recs.len()
    }

    /// The record of terminal `term`'s current transaction, if one has ever
    /// been installed.
    #[inline]
    #[must_use]
    pub fn get(&self, term: usize) -> Option<&TxnRec> {
        let r = &self.recs[term];
        r.live.then_some(r)
    }

    /// Mutable form of [`TxnArena::get`].
    #[inline]
    pub fn get_mut(&mut self, term: usize) -> Option<&mut TxnRec> {
        let r = &mut self.recs[term];
        r.live.then_some(r)
    }

    /// Iterate over the live records (debug census).
    pub fn live(&self) -> impl Iterator<Item = &TxnRec> {
        self.recs.iter().filter(|r| r.live)
    }

    /// Install a fresh transaction at `term`, copying `spec` into the
    /// terminal's data region. Semantically identical to the old
    /// `Txn::new_reusing` plus class assignment.
    #[allow(clippy::too_many_arguments)]
    pub fn install(
        &mut self,
        term: usize,
        id: TxnId,
        spec: &TxnSpec,
        shape: ProgramShape,
        thinks: bool,
        arrival: SimTime,
        epoch: u32,
        class: usize,
    ) {
        let n = spec.num_reads();
        assert!(
            n <= self.cap,
            "readset of {n} exceeds arena region capacity {}",
            self.cap
        );
        let base = term * self.cap;
        self.reads[base..base + n].copy_from_slice(spec.reads());
        let mut w = 0usize;
        for (i, &obj) in spec.reads().iter().enumerate() {
            if spec.writes_at(i) {
                self.write_objs[base + w] = obj;
                w += 1;
            }
        }
        if shape == ProgramShape::Static2pl {
            if self.lock_plan.is_empty() {
                self.lock_plan = vec![(ObjId(0), false); self.recs.len() * self.cap];
            }
            let plan = &mut self.lock_plan[base..base + n];
            for (i, slot) in plan.iter_mut().enumerate() {
                *slot = (spec.read_at(i), spec.writes_at(i));
            }
            plan.sort_unstable_by_key(|&(obj, _)| obj);
        }
        let program = Program::new(shape, thinks, spec.num_reads(), spec.num_writes());
        let prog_base = self.programs.ensure(shape, thinks, self.cap, program);
        self.recs[term] = TxnRec {
            id,
            program,
            pc: 0,
            cur: program.step_at(0),
            state: TxnState::Ready,
            arrival,
            attempt_start: arrival,
            epoch,
            usage: AttemptUsage::default(),
            blocks: 0,
            restarts: 0,
            cc_charged: false,
            publish_at: None,
            class,
            prog_base,
            n_reads: n as u32,
            n_writes: w as u32,
            n_read_times: 0,
            live: true,
        };
    }

    /// The readset of `term`'s transaction, in access order.
    #[inline]
    #[must_use]
    pub fn reads(&self, term: usize) -> &[ObjId] {
        let base = term * self.cap;
        &self.reads[base..base + self.recs[term].n_reads as usize]
    }

    /// The `i`-th object read by `term`'s transaction.
    #[inline]
    #[must_use]
    pub fn read_at(&self, term: usize, i: usize) -> ObjId {
        debug_assert!(i < self.recs[term].n_reads as usize);
        self.reads[term * self.cap + i]
    }

    /// The objects written by `term`'s transaction, in write order.
    #[inline]
    #[must_use]
    pub fn write_objs(&self, term: usize) -> &[ObjId] {
        let base = term * self.cap;
        &self.write_objs[base..base + self.recs[term].n_writes as usize]
    }

    /// The `j`-th object written by `term`'s transaction.
    #[inline]
    #[must_use]
    pub fn write_obj_at(&self, term: usize, j: usize) -> ObjId {
        debug_assert!(j < self.recs[term].n_writes as usize);
        self.write_objs[term * self.cap + j]
    }

    /// The `k`-th entry of `term`'s static preclaim plan.
    #[inline]
    #[must_use]
    pub fn lock_plan_at(&self, term: usize, k: usize) -> (ObjId, bool) {
        debug_assert!(k < self.recs[term].n_reads as usize);
        self.lock_plan[term * self.cap + k]
    }

    /// Record the completion time of `term`'s next read (history recording).
    pub fn push_read_time(&mut self, term: usize, now: SimTime) {
        if self.read_times.is_empty() {
            self.read_times = vec![SimTime::ZERO; self.recs.len() * self.cap];
        }
        let rec = &mut self.recs[term];
        let at = term * self.cap + rec.n_read_times as usize;
        debug_assert!(rec.n_read_times < rec.n_reads);
        self.read_times[at] = now;
        rec.n_read_times += 1;
    }

    /// Record a TicToc read observation for `term`'s next read: the
    /// version's write timestamp (which doubles as the history read
    /// instant in `read_times`) plus the validity bound (`rts`) the word
    /// carried at access time, kept in lockstep in a second lazily
    /// allocated region.
    pub fn push_read_obs(&mut self, term: usize, wts: SimTime, rts: SimTime) {
        if self.read_auxes.is_empty() {
            self.read_auxes = vec![SimTime::ZERO; self.recs.len() * self.cap];
        }
        let at = term * self.cap + self.recs[term].n_read_times as usize;
        self.read_auxes[at] = rts;
        self.push_read_time(term, wts);
    }

    /// Read-completion times recorded for `term`'s current attempt.
    #[must_use]
    pub fn read_times(&self, term: usize) -> &[SimTime] {
        let n = self.recs[term].n_read_times as usize;
        if n == 0 {
            return &[];
        }
        let base = term * self.cap;
        &self.read_times[base..base + n]
    }

    /// Observed `rts` bounds recorded via [`TxnArena::push_read_obs`] for
    /// `term`'s current attempt, parallel to [`TxnArena::read_times`].
    #[must_use]
    pub fn read_auxes(&self, term: usize) -> &[SimTime] {
        let n = self.recs[term].n_read_times as usize;
        if n == 0 {
            return &[];
        }
        let base = term * self.cap;
        &self.read_auxes[base..base + n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(reads: usize, write_ixs: &[usize]) -> TxnSpec {
        let objs: Vec<ObjId> = (0..reads as u64).map(|v| ObjId(v * 10)).collect();
        let writes: Vec<bool> = (0..reads).map(|i| write_ixs.contains(&i)).collect();
        TxnSpec::new(objs, writes)
    }

    #[test]
    fn install_copies_spec_into_region() {
        let mut a = TxnArena::new(4, 8);
        assert!(a.get(2).is_none());
        let s = spec(3, &[1]);
        a.install(
            2,
            TxnId(7),
            &s,
            ProgramShape::Dynamic2pl,
            false,
            SimTime::from_secs(1),
            0,
            0,
        );
        let rec = a.get(2).expect("installed");
        assert_eq!(rec.id, TxnId(7));
        assert_eq!(rec.state, TxnState::Ready);
        assert_eq!(rec.step(), Step::LockRead(0));
        assert_eq!(a.reads(2), s.reads());
        assert_eq!(a.write_objs(2), &[ObjId(10)]);
        assert_eq!(a.read_at(2, 1), ObjId(10));
        assert_eq!(a.write_obj_at(2, 0), ObjId(10));
        // Other terminals untouched.
        assert!(a.get(0).is_none() && a.get(3).is_none());
    }

    #[test]
    fn static_plan_is_sorted_by_object() {
        let mut a = TxnArena::new(2, 4);
        let s = TxnSpec::new(
            vec![ObjId(30), ObjId(10), ObjId(20)],
            vec![true, false, true],
        );
        a.install(
            1,
            TxnId(1),
            &s,
            ProgramShape::Static2pl,
            false,
            SimTime::ZERO,
            0,
            0,
        );
        assert_eq!(a.lock_plan_at(1, 0), (ObjId(10), false));
        assert_eq!(a.lock_plan_at(1, 1), (ObjId(20), true));
        assert_eq!(a.lock_plan_at(1, 2), (ObjId(30), true));
    }

    #[test]
    fn lifecycle_matches_old_txn_semantics() {
        let mut a = TxnArena::new(1, 4);
        let s = spec(2, &[1]);
        a.install(
            0,
            TxnId(7),
            &s,
            ProgramShape::Dynamic2pl,
            false,
            SimTime::from_secs(1),
            0,
            0,
        );
        a.push_read_time(0, SimTime::from_secs(2));
        assert_eq!(a.read_times(0), &[SimTime::from_secs(2)]);
        let rec = a.get_mut(0).unwrap();
        rec.advance();
        assert_eq!(rec.step(), Step::ReadIo(0));
        rec.usage.add_cpu(ccsim_des::SimDuration::from_millis(15));
        rec.bump_epoch();
        rec.begin_attempt(SimTime::from_secs(5));
        assert_eq!(rec.pc, 0);
        assert_eq!(rec.epoch, 1);
        assert_eq!(rec.usage, AttemptUsage::default());
        assert_eq!(rec.attempt_start, SimTime::from_secs(5));
        assert_eq!(
            rec.arrival,
            SimTime::from_secs(1),
            "arrival survives restart"
        );
        assert_eq!(a.read_times(0), &[], "read times reset with the attempt");
    }

    #[test]
    fn reinstall_overwrites_without_leaking_lengths() {
        let mut a = TxnArena::new(1, 8);
        a.install(
            0,
            TxnId(1),
            &spec(6, &[0, 1, 2]),
            ProgramShape::LockFree,
            false,
            SimTime::ZERO,
            0,
            0,
        );
        assert_eq!(a.reads(0).len(), 6);
        assert_eq!(a.write_objs(0).len(), 3);
        a.install(
            0,
            TxnId(2),
            &spec(2, &[]),
            ProgramShape::LockFree,
            false,
            SimTime::ZERO,
            1,
            0,
        );
        assert_eq!(a.reads(0).len(), 2);
        assert_eq!(a.write_objs(0).len(), 0);
        assert_eq!(a.get(0).unwrap().epoch, 1);
    }

    #[test]
    fn program_table_matches_step_at_for_every_shape() {
        // Walk an installed transaction to Commit with the table-backed
        // `TxnArena::advance` and check every decoded step against the
        // arithmetic reference, across shapes, think flags, and sizes
        // (including reinstalls that hit and miss the table cache).
        for shape in [
            ProgramShape::Dynamic2pl,
            ProgramShape::Static2pl,
            ProgramShape::LockFree,
        ] {
            for thinks in [false, true] {
                let mut a = TxnArena::new(1, 6);
                for reads in 1..=6usize {
                    for nw in 0..=reads {
                        let wr: Vec<usize> = (0..nw).collect();
                        a.install(
                            0,
                            TxnId(1),
                            &spec(reads, &wr),
                            shape,
                            thinks,
                            SimTime::ZERO,
                            0,
                            0,
                        );
                        let program = a.get(0).unwrap().program;
                        assert_eq!(a.get(0).unwrap().step(), program.step_at(0));
                        for pc in 1..program.len() {
                            a.advance(0);
                            let rec = a.get(0).unwrap();
                            assert_eq!(rec.pc, pc);
                            assert_eq!(
                                rec.step(),
                                program.step_at(pc),
                                "{shape:?} {thinks} {reads} {nw} pc={pc}"
                            );
                        }
                        assert_eq!(a.get(0).unwrap().step(), Step::Commit);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds arena region capacity")]
    fn oversized_readset_panics() {
        let mut a = TxnArena::new(1, 2);
        a.install(
            0,
            TxnId(1),
            &spec(3, &[]),
            ProgramShape::LockFree,
            false,
            SimTime::ZERO,
            0,
            0,
        );
    }
}
