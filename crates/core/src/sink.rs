//! The [`EventSink`] observer interface.
//!
//! The engine's typed event stream (see [`crate::TraceEvent`]) originally
//! fed exactly one consumer: the bounded [`Trace`] ring buffer. `EventSink`
//! generalizes that into an observer trait so any number of consumers —
//! the trace buffer, an online invariant auditor (`ccsim-audit`), custom
//! instrumentation — can subscribe to every state transition via
//! [`crate::Simulator::add_sink`] without the engine knowing about them.
//!
//! At the end of a run each sink also receives the final [`Report`] plus
//! [`FlowStats`], the physical resource centers' queueing totals. The
//! flow numbers are bookkept two independent ways inside the resource
//! layer (a queue-length time integral vs. per-request waiting times), so
//! a sink can check the operational form of Little's law — the time
//! integral of queue length must equal the total waiting time accumulated
//! by requests — as an exact identity.

use ccsim_des::SimTime;

use crate::metrics::Report;
use crate::trace::{Trace, TraceEvent};

/// Per-service-center queueing totals over a whole run, measured at the
/// final simulated instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CenterFlow {
    /// Number of servers at the center.
    pub servers: usize,
    /// Cumulative busy time across all servers, µs.
    pub busy_us: u64,
    /// Requests fully served.
    pub served: u64,
    /// ∫ (queue length) dt over the run, µs·requests. Counts *waiting*
    /// requests only (not those in service).
    pub queue_integral_us: u64,
    /// Total time spent waiting in queue by requests that have already
    /// entered service, µs.
    pub total_wait_us: u64,
    /// Waiting time accrued so far by requests still queued at the end of
    /// the run, µs.
    pub pending_wait_us: u64,
}

impl CenterFlow {
    /// Little's-law flow balance, operational form: the queue-length time
    /// integral must exactly equal the waiting time accumulated by all
    /// requests (completed or still pending). The two sides are bookkept
    /// independently, so a mismatch means the center lost or invented work.
    #[must_use]
    pub fn flow_balanced(&self) -> bool {
        self.queue_integral_us == self.total_wait_us + self.pending_wait_us
    }
}

/// End-of-run flow statistics for the physical resource centers. Both are
/// `None` under infinite resources (no queues exist to balance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowStats {
    /// Total simulated horizon, µs.
    pub horizon_us: u64,
    /// The CPU pool, if physical.
    pub cpu: Option<CenterFlow>,
    /// The disk array (aggregated over all disks), if physical.
    pub disk: Option<CenterFlow>,
}

/// An observer of the engine's event stream.
///
/// Sinks are registered with [`crate::Simulator::add_sink`] and receive
/// every event the engine emits — including warmup, unlike [`Report`]
/// metrics — in simulation order.
pub trait EventSink {
    /// Called for every state transition, at the simulated instant `now`.
    fn on_event(&mut self, now: SimTime, event: &TraceEvent);

    /// Called once when the run completes, with the final report and the
    /// resource centers' flow totals.
    fn on_run_end(&mut self, _now: SimTime, _report: &Report, _flow: &FlowStats) {}
}

/// The trace ring buffer is itself just an event sink that retains the
/// last N events.
impl EventSink for Trace {
    fn on_event(&mut self, now: SimTime, event: &TraceEvent) {
        self.push(now, *event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_workload::TxnId;

    #[test]
    fn trace_is_an_event_sink() {
        let mut trace = Trace::with_capacity(2);
        let sink: &mut dyn EventSink = &mut trace;
        sink.on_event(SimTime::from_secs(1), &TraceEvent::Arrive(TxnId(1)));
        sink.on_event(SimTime::from_secs(2), &TraceEvent::Commit(TxnId(1)));
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn flow_balance_is_exact() {
        let mut f = CenterFlow {
            servers: 1,
            busy_us: 10,
            served: 2,
            queue_integral_us: 100,
            total_wait_us: 60,
            pending_wait_us: 40,
        };
        assert!(f.flow_balanced());
        f.pending_wait_us = 41;
        assert!(!f.flow_balanced());
    }
}
