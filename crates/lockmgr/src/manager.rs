//! The lock table.
//!
//! Implements the locking substrate shared by the paper's blocking and
//! immediate-restart algorithms (and the wait-die / wound-wait extensions):
//! read locks taken at read time, upgraded to write locks at write time,
//! all locks released together at end of transaction (strict two-phase
//! locking with deferred updates).
//!
//! Queueing discipline: FCFS per object, except that **upgrade requests
//! queue ahead of non-upgrade requests** (a conversion blocks every later
//! request anyway, and ordering it first avoids needless denial cascades).
//! A request is granted immediately only if it is compatible with all
//! current holders *and* no request is queued ahead of it — readers do not
//! jump over queued writers, so writers cannot starve.
//!
//! # Storage layout
//!
//! The table is *sparse*: it holds state only for objects that currently
//! have a holder or a waiter, so memory scales with the number of locks in
//! flight (at most `mpl × tran_size`), not with `db_size`. That is what
//! makes `db_size = 10^8` runs practical — a dense `Vec<Entry>` indexed by
//! [`ObjId`] would cost gigabytes while a run touches a vanishing fraction
//! of the database. Concretely:
//!
//! * `entries` is a pool of [`Entry`] slots; `index` is an open-addressed
//!   hash map (`ObjId → slot`, Fibonacci hashing, backward-shift deletion)
//!   over that pool.
//! * When a release or queue cancellation empties an entry (no holders, no
//!   waiters), its slot is pushed onto a free list and the index entry is
//!   removed; the next lock on *any* object pops the slot and reuses its
//!   `holders`/`queue` allocations. Steady-state locking is therefore
//!   allocation-free, exactly as the dense layout was.
//! * Invariant: an indexed entry is never empty, and every pool slot is
//!   either indexed or on the free list ([`LockManager::assert_consistent`]
//!   checks both, plus exact `held_count` occupancy accounting — the
//!   `peak_locks_in_table` statistic is unchanged by the sparse layout).
//!
//! Per-transaction state (held objects, outstanding request) lives in a
//! slot array indexed by `TxnId % nslots`; the engine derives transaction
//! ids as `serial * num_terms + terminal`, so sizing the slot array to the
//! terminal count makes the mapping collision-free. Standalone users get a
//! default slot count that doubles transparently whenever two live
//! transactions would collide.

use std::collections::VecDeque;

use ccsim_workload::{ObjId, ObjMap, TxnId};

use crate::graph::find_cycle_through;

/// Lock modes. Reads share; writes exclude everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared lock.
    Read,
    /// Exclusive lock.
    Write,
}

impl LockMode {
    /// Can a holder in `self` mode coexist with a request in `other` mode
    /// from a *different* transaction?
    #[must_use]
    pub fn compatible_with(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Read, LockMode::Read))
    }
}

/// Result of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The lock was acquired (or was already held in a sufficient mode).
    Granted,
    /// The request joined the object's queue; the transaction must block.
    Queued,
    /// The request conflicts and queueing was not permitted
    /// ([`LockManager::try_request`] — the immediate-restart algorithm).
    Denied,
}

/// A lock granted to a previously blocked transaction during a release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The transaction whose queued request was granted.
    pub txn: TxnId,
    /// The object it now holds.
    pub obj: ObjId,
    /// The granted mode.
    pub mode: LockMode,
}

#[derive(Debug, Clone)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
    /// True if the waiter already holds a read lock on the object and is
    /// converting it to a write lock.
    is_upgrade: bool,
}

#[derive(Debug, Default)]
struct Entry {
    holders: Vec<(TxnId, LockMode)>,
    queue: VecDeque<Waiter>,
}

impl Entry {
    fn holder_mode(&self, txn: TxnId) -> Option<LockMode> {
        self.holders
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|&(_, m)| m)
    }

    fn is_sole_holder(&self, txn: TxnId) -> bool {
        self.holders.len() == 1 && self.holders[0].0 == txn
    }

    fn compatible_for(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|&(t, m)| t == txn || m.compatible_with(mode))
    }
}

/// Per-transaction state, addressed by `TxnId % slots.len()`.
///
/// A slot is *vacant* (reusable by any transaction hashing to it) once its
/// occupant neither holds locks nor waits; `tid` then only records the last
/// occupant and carries no meaning.
#[derive(Debug)]
struct TxnSlot {
    tid: TxnId,
    /// Objects on which the occupant holds a lock, in acquisition order.
    held: Vec<ObjId>,
    /// The occupant's single outstanding blocked request, if any.
    waiting: Option<ObjId>,
}

impl TxnSlot {
    fn new() -> Self {
        TxnSlot {
            tid: TxnId(0),
            held: Vec::new(),
            waiting: None,
        }
    }

    fn is_vacant(&self) -> bool {
        self.held.is_empty() && self.waiting.is_none()
    }
}

/// Default transaction-slot count for standalone construction via
/// [`LockManager::new`]; grows on demand.
const DEFAULT_TXN_SLOTS: usize = 64;

/// The lock manager: sparse hashed lock table plus per-transaction slot
/// array (see the module docs for the storage layout).
#[derive(Debug)]
pub struct LockManager {
    /// Pool of entry slots; live ones are reachable through `index`,
    /// retired ones through `free`. Retired slots keep their
    /// `holders`/`queue` allocations for reuse.
    entries: Vec<Entry>,
    /// Sparse `ObjId → entries` slot map: present iff the object currently
    /// has at least one holder or waiter.
    index: ObjMap<u32>,
    /// Retired entry slots available for reuse (LIFO).
    free: Vec<u32>,
    /// Per-transaction state, indexed by `TxnId % txns.len()`.
    txns: Vec<TxnSlot>,
    /// Total `(txn, obj)` holder pairs in the table (current occupancy).
    held_count: usize,
    /// High-water mark of `held_count` over the manager's lifetime.
    peak_held: usize,
    /// Counters for observability.
    grants: u64,
    blocks: u64,
    denials: u64,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new()
    }
}

impl LockManager {
    /// An empty lock table with default capacity. The object table and the
    /// transaction slot array both grow on demand.
    #[must_use]
    pub fn new() -> Self {
        LockManager::with_capacity(0, DEFAULT_TXN_SLOTS)
    }

    /// An empty lock table presized for `db_size` objects and `txn_slots`
    /// concurrently live transactions. When transaction ids are assigned as
    /// `serial * txn_slots + index` (the engine's terminal numbering), the
    /// slot mapping is collision-free and never reallocates.
    ///
    /// The table is sparse, so `db_size` is only a pre-sizing *hint* (capped
    /// well below `10^8` — memory follows locks in flight, not objects).
    #[must_use]
    pub fn with_capacity(db_size: usize, txn_slots: usize) -> Self {
        // Pre-size for modest small-regime runs; big runs grow on demand.
        let hint = db_size.min(1024);
        let nslots = txn_slots.max(1);
        let mut txns = Vec::with_capacity(nslots);
        txns.resize_with(nslots, TxnSlot::new);
        LockManager {
            entries: Vec::with_capacity(hint),
            index: ObjMap::with_capacity(hint),
            free: Vec::new(),
            txns,
            held_count: 0,
            peak_held: 0,
            grants: 0,
            blocks: 0,
            denials: 0,
        }
    }

    /// Hint the CPU to pull `obj`'s lock-table index line into cache ahead
    /// of an upcoming request/release probe for the same object.
    ///
    /// Purely a performance hint (forwarded to [`ObjMap::prefetch`]): it has
    /// no effect on grant decisions, queue order, statistics, or any other
    /// observable behaviour, so interleaving prefetch calls anywhere leaves
    /// the table byte-identical.
    #[inline]
    pub fn prefetch(&self, obj: ObjId) {
        self.index.prefetch(obj);
    }

    /// The lock-table home slot `obj` hashes to (see `ObjMap::home_slot`).
    /// Speculative window execution partitions planned events by this
    /// value: two lock requests with the same home slot are treated as a
    /// cross-shard interaction and the later hint is demoted to a
    /// conflict, to be replayed serially. Read-only and probe-free.
    #[inline]
    #[must_use]
    pub fn home_slot(&self, obj: ObjId) -> usize {
        self.index.home_slot(obj)
    }

    /// The entry slot for `obj`, creating one (recycled if possible) when
    /// the object has no lock state yet.
    fn ensure_obj(&mut self, obj: ObjId) -> usize {
        if let Some(i) = self.index.get(obj) {
            return i as usize;
        }
        let i = match self.free.pop() {
            Some(i) => i as usize,
            None => {
                let i = self.entries.len();
                assert!(
                    i <= u32::MAX as usize,
                    "more than 2^32 concurrently locked objects"
                );
                self.entries.push(Entry::default());
                i
            }
        };
        self.index.insert(obj, i as u32);
        i
    }

    /// The live entry for `obj`, if it has any lock state.
    #[inline]
    fn entry_of(&self, obj: ObjId) -> Option<&Entry> {
        self.index.get(obj).map(|i| &self.entries[i as usize])
    }

    /// Retire entry slot `i` (known empty) back to the free list so its
    /// allocations are reused by the next locked object.
    fn retire(&mut self, obj: ObjId, i: usize) {
        debug_assert!(self.entries[i].holders.is_empty() && self.entries[i].queue.is_empty());
        let removed = self.index.remove(obj);
        debug_assert_eq!(removed, Some(i as u32));
        self.free.push(i as u32);
    }

    /// The slot currently occupied by `tid`, if it is live.
    fn slot_of(&self, tid: TxnId) -> Option<usize> {
        let i = (tid.0 % self.txns.len() as u64) as usize;
        let s = &self.txns[i];
        (s.tid == tid && !s.is_vacant()).then_some(i)
    }

    /// Claim a slot for `tid`, growing the slot array if another live
    /// transaction occupies it.
    fn claim_slot(&mut self, tid: TxnId) -> usize {
        loop {
            let i = (tid.0 % self.txns.len() as u64) as usize;
            let s = &mut self.txns[i];
            if s.tid == tid || s.is_vacant() {
                s.tid = tid;
                return i;
            }
            self.grow_slots();
        }
    }

    /// Double the slot-array modulus until every live transaction maps to a
    /// distinct slot, then re-place them.
    fn grow_slots(&mut self) {
        let old_len = self.txns.len();
        let live: Vec<TxnSlot> = std::mem::take(&mut self.txns)
            .into_iter()
            .filter(|s| !s.is_vacant())
            .collect();
        let mut n = old_len.max(live.len()).max(1);
        loop {
            n *= 2;
            assert!(
                n <= 1 << 32,
                "cannot find a collision-free transaction slot modulus"
            );
            let mut residues: Vec<u64> = live.iter().map(|s| s.tid.0 % n as u64).collect();
            residues.sort_unstable();
            if residues.windows(2).all(|w| w[0] != w[1]) {
                break;
            }
        }
        let mut txns = Vec::with_capacity(n);
        txns.resize_with(n, TxnSlot::new);
        for s in live {
            let i = (s.tid.0 % n as u64) as usize;
            txns[i] = s;
        }
        self.txns = txns;
    }

    /// Request `mode` on `obj` for `txn`, queueing on conflict (the
    /// blocking algorithm). After a [`RequestOutcome::Queued`] result the
    /// caller should run [`LockManager::find_deadlock`].
    ///
    /// # Panics
    /// Panics if `txn` is already waiting (the model allows one outstanding
    /// request), or downgrades a write lock to read.
    pub fn request(&mut self, txn: TxnId, obj: ObjId, mode: LockMode) -> RequestOutcome {
        self.request_inner(txn, obj, mode, true)
    }

    /// Request `mode` on `obj` for `txn`, returning
    /// [`RequestOutcome::Denied`] instead of queueing on conflict (the
    /// immediate-restart algorithm: "if a lock request is denied, the
    /// requesting transaction is aborted").
    pub fn try_request(&mut self, txn: TxnId, obj: ObjId, mode: LockMode) -> RequestOutcome {
        self.request_inner(txn, obj, mode, false)
    }

    fn request_inner(
        &mut self,
        txn: TxnId,
        obj: ObjId,
        mode: LockMode,
        may_queue: bool,
    ) -> RequestOutcome {
        assert!(
            self.waiting_on(txn).is_none(),
            "{txn} already has an outstanding lock request"
        );
        let oi = self.ensure_obj(obj);
        match self.entries[oi].holder_mode(txn) {
            Some(LockMode::Write) => {
                // Write covers both modes; re-request is a no-op.
                self.grants += 1;
                RequestOutcome::Granted
            }
            Some(LockMode::Read) if mode == LockMode::Read => {
                self.grants += 1;
                RequestOutcome::Granted
            }
            Some(LockMode::Read) => {
                // Upgrade read -> write.
                if self.entries[oi].is_sole_holder(txn) {
                    self.entries[oi].holders[0].1 = LockMode::Write;
                    self.grants += 1;
                    RequestOutcome::Granted
                } else if may_queue {
                    let si = self.claim_slot(txn);
                    let entry = &mut self.entries[oi];
                    let pos = entry.queue.iter().take_while(|w| w.is_upgrade).count();
                    entry.queue.insert(
                        pos,
                        Waiter {
                            txn,
                            mode: LockMode::Write,
                            is_upgrade: true,
                        },
                    );
                    self.txns[si].waiting = Some(obj);
                    self.blocks += 1;
                    RequestOutcome::Queued
                } else {
                    self.denials += 1;
                    RequestOutcome::Denied
                }
            }
            None => {
                if self.entries[oi].queue.is_empty() && self.entries[oi].compatible_for(txn, mode) {
                    let si = self.claim_slot(txn);
                    self.entries[oi].holders.push((txn, mode));
                    self.held_count += 1;
                    if self.held_count > self.peak_held {
                        self.peak_held = self.held_count;
                    }
                    self.txns[si].held.push(obj);
                    self.grants += 1;
                    RequestOutcome::Granted
                } else if may_queue {
                    let si = self.claim_slot(txn);
                    self.entries[oi].queue.push_back(Waiter {
                        txn,
                        mode,
                        is_upgrade: false,
                    });
                    self.txns[si].waiting = Some(obj);
                    self.blocks += 1;
                    RequestOutcome::Queued
                } else {
                    self.denials += 1;
                    RequestOutcome::Denied
                }
            }
        }
    }

    /// Release every lock `txn` holds and cancel its queued request (if
    /// any). Returns the requests granted as a consequence, in grant order.
    /// Used both at commit (after deferred updates) and at abort.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<Grant> {
        let mut grants = Vec::new();
        self.release_all_into(txn, &mut grants);
        grants
    }

    /// Allocation-free form of [`LockManager::release_all`]: consequent
    /// grants are appended to `grants` (existing contents are untouched),
    /// letting the caller reuse one buffer across calls.
    pub fn release_all_into(&mut self, txn: TxnId, grants: &mut Vec<Grant>) {
        let start = grants.len();
        let Some(si) = self.slot_of(txn) else {
            return; // unknown or already-finished transaction: no-op
        };
        // Cancel an outstanding queued request.
        if let Some(obj) = self.txns[si].waiting.take() {
            let ei = self
                .index
                .get(obj)
                .expect("waited-on object has lock state") as usize;
            let entry = &mut self.entries[ei];
            entry.queue.retain(|w| w.txn != txn);
            // Removing a waiter can unblock those behind it (e.g. a
            // queued upgrade vanishing lets queued readers through).
            let from = grants.len();
            Self::drain_queue(entry, grants, &mut self.held_count);
            let emptied = entry.holders.is_empty() && entry.queue.is_empty();
            Self::patch_grants(obj, grants, from);
            if emptied {
                self.retire(obj, ei);
            }
        }
        // Release held locks, in acquisition order. The held list is moved
        // out and handed back so its allocation survives with the slot.
        // While releasing lock k the index line for lock k+1 is prefetched:
        // at 10^6-terminal scale the sparse index outgrows cache and every
        // probe would otherwise start with a cold miss.
        let mut held = std::mem::take(&mut self.txns[si].held);
        for k in 0..held.len() {
            let obj = held[k];
            if let Some(&next) = held.get(k + 1) {
                self.index.prefetch(next);
            }
            let ei = self.index.get(obj).expect("held object has lock state") as usize;
            let entry = &mut self.entries[ei];
            let before = entry.holders.len();
            entry.holders.retain(|(t, _)| *t != txn);
            self.held_count -= before - entry.holders.len();
            let from = grants.len();
            Self::drain_queue(entry, grants, &mut self.held_count);
            let emptied = entry.holders.is_empty() && entry.queue.is_empty();
            Self::patch_grants(obj, grants, from);
            if emptied {
                self.retire(obj, ei);
            }
        }
        held.clear();
        self.txns[si].held = held;
        // Index the new grants (an upgrade grant's object is already in the
        // holder's held list).
        for &g in &grants[start..] {
            let gsi = self.claim_slot(g.txn);
            let slot = &mut self.txns[gsi];
            slot.waiting = None;
            if !slot.held.contains(&g.obj) {
                slot.held.push(g.obj);
            }
            self.grants += 1;
        }
        // Draining can promote several queued readers in place of one
        // writer, so occupancy may exceed the pre-release peak.
        if self.held_count > self.peak_held {
            self.peak_held = self.held_count;
        }
    }

    /// Grant queued requests that have become compatible, FCFS.
    fn drain_queue(entry: &mut Entry, grants: &mut Vec<Grant>, held_count: &mut usize) {
        while let Some(head) = entry.queue.front() {
            if head.is_upgrade {
                if entry.is_sole_holder(head.txn) {
                    let txn = head.txn;
                    entry.holders[0].1 = LockMode::Write;
                    entry.queue.pop_front();
                    grants.push(Grant {
                        txn,
                        obj: ObjId(0), // patched below
                        mode: LockMode::Write,
                    });
                } else {
                    break;
                }
            } else if entry.compatible_for(head.txn, head.mode) {
                let w = entry.queue.pop_front().expect("front exists");
                entry.holders.push((w.txn, w.mode));
                *held_count += 1;
                grants.push(Grant {
                    txn: w.txn,
                    obj: ObjId(0), // patched below
                    mode: w.mode,
                });
            } else {
                break;
            }
        }
    }

    /// Look for a deadlock involving `txn` (called right after `txn`
    /// blocks). Returns the waits-for cycle if one exists.
    ///
    /// Waits-for edges run from a waiter to (a) every holder whose lock
    /// conflicts with the waiter's requested mode and (b) every waiter
    /// *ahead* of it in the queue with a conflicting mode — FCFS queueing
    /// means those will be granted first, so they are genuine waits.
    #[must_use]
    pub fn find_deadlock(&self, txn: TxnId) -> Option<Vec<TxnId>> {
        self.waiting_on(txn)?;
        find_cycle_through(txn, |t, out| self.waits_for_into(t, out))
    }

    fn waits_for_into(&self, txn: TxnId, out: &mut Vec<TxnId>) {
        let Some(obj) = self.waiting_on(txn) else {
            return;
        };
        let Some(entry) = self.entry_of(obj) else {
            return;
        };
        let Some(me_pos) = entry.queue.iter().position(|w| w.txn == txn) else {
            return;
        };
        let my_mode = entry.queue[me_pos].mode;
        for &(holder, hmode) in &entry.holders {
            if holder != txn && !(hmode.compatible_with(my_mode)) {
                out.push(holder);
            }
        }
        for ahead in entry.queue.iter().take(me_pos) {
            if ahead.txn != txn
                && !(ahead.mode.compatible_with(my_mode) && my_mode.compatible_with(ahead.mode))
            {
                out.push(ahead.txn);
            }
        }
    }

    /// The transactions a request for `mode` on `obj` by `txn` would have
    /// to wait for *right now*: conflicting holders plus every queued waiter
    /// with a conflicting mode (a new request joins the back of the queue).
    /// Empty means the request would be granted immediately. Used by the
    /// deadlock-prevention schemes (wait-die, wound-wait) to decide before
    /// requesting.
    #[must_use]
    pub fn blockers(&self, txn: TxnId, obj: ObjId, mode: LockMode) -> Vec<TxnId> {
        let mut out = Vec::new();
        self.blockers_into(txn, obj, mode, &mut out);
        out
    }

    /// Allocation-free form of [`LockManager::blockers`]: blockers are
    /// appended to `out` (existing contents are untouched).
    pub fn blockers_into(&self, txn: TxnId, obj: ObjId, mode: LockMode, out: &mut Vec<TxnId>) {
        let Some(entry) = self.entry_of(obj) else {
            return;
        };
        match entry.holder_mode(txn) {
            Some(LockMode::Write) => {}
            Some(LockMode::Read) if mode == LockMode::Read => {}
            Some(LockMode::Read) => {
                // Upgrade: waits for every other holder.
                for &(t, _) in &entry.holders {
                    if t != txn {
                        out.push(t);
                    }
                }
                // Upgrades queue ahead of plain waiters but behind earlier
                // upgrades, which necessarily conflict (both want Write).
                for w in entry.queue.iter().take_while(|w| w.is_upgrade) {
                    if w.txn != txn {
                        out.push(w.txn);
                    }
                }
            }
            None => {
                let before = out.len();
                for &(t, m) in &entry.holders {
                    if t != txn && !m.compatible_with(mode) {
                        out.push(t);
                    }
                }
                for w in &entry.queue {
                    if w.txn != txn
                        && !(w.mode.compatible_with(mode) && mode.compatible_with(w.mode))
                    {
                        out.push(w.txn);
                    }
                }
                // Even a compatible request must queue behind any waiter
                // (no overtaking); if the queue is non-empty the request
                // waits for at least the queue head.
                if out.len() == before && !entry.queue.is_empty() {
                    out.push(entry.queue[0].txn);
                }
            }
        }
    }

    /// The mode `txn` holds on `obj`, if any.
    #[must_use]
    pub fn holds(&self, txn: TxnId, obj: ObjId) -> Option<LockMode> {
        self.entry_of(obj).and_then(|e| e.holder_mode(txn))
    }

    /// The object `txn` is blocked on, if it is blocked.
    #[must_use]
    pub fn waiting_on(&self, txn: TxnId) -> Option<ObjId> {
        let i = (txn.0 % self.txns.len() as u64) as usize;
        let s = &self.txns[i];
        if s.tid == txn {
            s.waiting
        } else {
            None
        }
    }

    /// Number of locks `txn` currently holds.
    #[must_use]
    pub fn locks_held(&self, txn: TxnId) -> usize {
        self.slot_of(txn).map_or(0, |i| self.txns[i].held.len())
    }

    /// Total locks currently held across all transactions (table
    /// occupancy; one writer or each reader counts as one lock).
    #[must_use]
    pub fn locks_in_table(&self) -> usize {
        self.held_count
    }

    /// The most locks ever held at once (peak table occupancy).
    #[must_use]
    pub fn peak_locks_in_table(&self) -> usize {
        self.peak_held
    }

    /// Entry slots ever allocated (live + free). Bounded by the peak number
    /// of *concurrently* locked objects, not by `db_size` — the memory
    /// story of the sparse table, surfaced for the scale benchmarks.
    #[must_use]
    pub fn entry_slots(&self) -> usize {
        self.entries.len()
    }

    /// All current holders of `obj` (test/diagnostic aid).
    #[must_use]
    pub fn holders_of(&self, obj: ObjId) -> &[(TxnId, LockMode)] {
        self.entry_of(obj).map_or(&[], |e| e.holders.as_slice())
    }

    /// Queue length on `obj`.
    #[must_use]
    pub fn queue_len(&self, obj: ObjId) -> usize {
        self.entry_of(obj).map_or(0, |e| e.queue.len())
    }

    /// Lifetime counters: `(grants, blocks, denials)`.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.grants, self.blocks, self.denials)
    }

    /// Verify internal invariants. Intended for tests; panics on violation.
    ///
    /// # Panics
    /// Panics if any transaction slot disagrees with the lock table, if
    /// multiple holders coexist with a writer, if a grantable queue head was
    /// left waiting, if the occupancy counter drifts, or if the sparse
    /// table's slot accounting breaks (an indexed entry is empty, a slot is
    /// both indexed and free, or a pool slot is neither).
    pub fn assert_consistent(&self) {
        // Sparse-layout accounting: every pool slot is exactly one of
        // indexed (and then non-empty) or free (and then empty).
        let mut seen = vec![false; self.entries.len()];
        for (obj, i) in self.index.iter() {
            let entry = &self.entries[i as usize];
            assert!(
                !std::mem::replace(&mut seen[i as usize], true),
                "entry slot {i} indexed twice"
            );
            assert!(
                !entry.holders.is_empty() || !entry.queue.is_empty(),
                "{obj}: indexed entry is empty (should be retired)"
            );
        }
        for &i in &self.free {
            let entry = &self.entries[i as usize];
            assert!(
                !std::mem::replace(&mut seen[i as usize], true),
                "entry slot {i} free-listed twice or also indexed"
            );
            assert!(
                entry.holders.is_empty() && entry.queue.is_empty(),
                "free entry slot {i} still has lock state"
            );
        }
        assert!(
            seen.iter().all(|&s| s),
            "orphaned entry slot (neither indexed nor free)"
        );
        let mut holder_pairs = 0usize;
        for (obj, ei) in self.index.iter() {
            let entry = &self.entries[ei as usize];
            holder_pairs += entry.holders.len();
            let writers = entry
                .holders
                .iter()
                .filter(|(_, m)| *m == LockMode::Write)
                .count();
            if writers > 0 {
                assert_eq!(
                    entry.holders.len(),
                    1,
                    "{obj} has a writer plus other holders"
                );
            }
            for &(t, _) in &entry.holders {
                let si = self.slot_of(t).unwrap_or_else(|| {
                    panic!("{obj} holder {t} has no transaction slot");
                });
                assert!(
                    self.txns[si].held.contains(&obj),
                    "{obj} holder {t} missing from held index"
                );
            }
            for w in &entry.queue {
                assert_eq!(
                    self.waiting_on(w.txn),
                    Some(obj),
                    "queued {} missing from waiting index",
                    w.txn
                );
                if w.is_upgrade {
                    assert_eq!(
                        entry.holder_mode(w.txn),
                        Some(LockMode::Read),
                        "upgrade waiter {} does not hold a read lock",
                        w.txn
                    );
                }
            }
            // No grantable head left waiting.
            if let Some(head) = entry.queue.front() {
                if head.is_upgrade {
                    assert!(
                        !entry.is_sole_holder(head.txn),
                        "{obj}: grantable upgrade left queued"
                    );
                } else {
                    assert!(
                        !entry.compatible_for(head.txn, head.mode),
                        "{obj}: grantable head left queued"
                    );
                }
            }
        }
        assert_eq!(
            holder_pairs, self.held_count,
            "lock occupancy counter drifted"
        );
        for slot in &self.txns {
            if slot.is_vacant() {
                continue;
            }
            let txn = slot.tid;
            for &obj in &slot.held {
                assert!(
                    self.entry_of(obj)
                        .is_some_and(|e| e.holder_mode(txn).is_some()),
                    "held index lists {txn} on {obj} but table disagrees"
                );
            }
            if let Some(obj) = slot.waiting {
                assert!(
                    self.entry_of(obj)
                        .is_some_and(|e| e.queue.iter().any(|w| w.txn == txn)),
                    "waiting index lists {txn} on {obj} but queue disagrees"
                );
            }
        }
    }
}

impl LockManager {
    // `drain_queue` borrows only the entry and cannot see the object id, so
    // grants are created with a placeholder and patched here.
    fn patch_grants(obj: ObjId, grants: &mut [Grant], from: usize) {
        for g in &mut grants[from..] {
            g.obj = obj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u64) -> TxnId {
        TxnId(v)
    }
    fn o(v: u64) -> ObjId {
        ObjId(v)
    }

    #[test]
    fn read_locks_share() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.request(t(1), o(7), LockMode::Read),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(t(2), o(7), LockMode::Read),
            RequestOutcome::Granted
        );
        assert_eq!(lm.holders_of(o(7)).len(), 2);
        lm.assert_consistent();
    }

    #[test]
    fn write_excludes_read() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.request(t(1), o(7), LockMode::Write),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(t(2), o(7), LockMode::Read),
            RequestOutcome::Queued
        );
        assert_eq!(lm.waiting_on(t(2)), Some(o(7)));
        lm.assert_consistent();
    }

    #[test]
    fn read_excludes_write() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.request(t(1), o(7), LockMode::Read),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(t(2), o(7), LockMode::Write),
            RequestOutcome::Queued
        );
        lm.assert_consistent();
    }

    #[test]
    fn reacquisition_is_noop() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(7), LockMode::Read);
        assert_eq!(
            lm.request(t(1), o(7), LockMode::Read),
            RequestOutcome::Granted
        );
        lm.request(t(1), o(8), LockMode::Write);
        assert_eq!(
            lm.request(t(1), o(8), LockMode::Read),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(t(1), o(8), LockMode::Write),
            RequestOutcome::Granted
        );
        assert_eq!(lm.locks_held(t(1)), 2);
        lm.assert_consistent();
    }

    #[test]
    fn sole_reader_upgrades_in_place() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(7), LockMode::Read);
        assert_eq!(
            lm.request(t(1), o(7), LockMode::Write),
            RequestOutcome::Granted
        );
        assert_eq!(lm.holds(t(1), o(7)), Some(LockMode::Write));
        lm.assert_consistent();
    }

    #[test]
    fn upgrade_waits_for_other_readers() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(7), LockMode::Read);
        lm.request(t(2), o(7), LockMode::Read);
        assert_eq!(
            lm.request(t(1), o(7), LockMode::Write),
            RequestOutcome::Queued
        );
        lm.assert_consistent();
        // When t2 releases, the upgrade is granted.
        let grants = lm.release_all(t(2));
        assert_eq!(
            grants,
            vec![Grant {
                txn: t(1),
                obj: o(7),
                mode: LockMode::Write
            }]
        );
        assert_eq!(lm.holds(t(1), o(7)), Some(LockMode::Write));
        lm.assert_consistent();
    }

    #[test]
    fn upgrade_queues_ahead_of_plain_waiters() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(7), LockMode::Read);
        lm.request(t(2), o(7), LockMode::Read);
        // t3 queues a plain write first, then t1 requests its upgrade.
        assert_eq!(
            lm.request(t(3), o(7), LockMode::Write),
            RequestOutcome::Queued
        );
        assert_eq!(
            lm.request(t(1), o(7), LockMode::Write),
            RequestOutcome::Queued
        );
        lm.assert_consistent();
        let grants = lm.release_all(t(2));
        // Upgrade first despite arriving later.
        assert_eq!(grants[0].txn, t(1));
        assert_eq!(grants[0].mode, LockMode::Write);
        lm.assert_consistent();
    }

    #[test]
    fn fcfs_no_reader_overtaking() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(7), LockMode::Read);
        lm.request(t(2), o(7), LockMode::Write); // queued
                                                 // A later read must not jump the queued writer.
        assert_eq!(
            lm.request(t(3), o(7), LockMode::Read),
            RequestOutcome::Queued
        );
        lm.assert_consistent();
        let grants = lm.release_all(t(1));
        assert_eq!(grants.len(), 1);
        assert_eq!(
            grants[0],
            Grant {
                txn: t(2),
                obj: o(7),
                mode: LockMode::Write
            }
        );
        let grants = lm.release_all(t(2));
        assert_eq!(
            grants,
            vec![Grant {
                txn: t(3),
                obj: o(7),
                mode: LockMode::Read
            }]
        );
        lm.assert_consistent();
    }

    #[test]
    fn release_grants_multiple_readers_together() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(7), LockMode::Write);
        lm.request(t(2), o(7), LockMode::Read);
        lm.request(t(3), o(7), LockMode::Read);
        let grants = lm.release_all(t(1));
        assert_eq!(grants.len(), 2);
        assert!(grants.iter().all(|g| g.mode == LockMode::Read));
        assert_eq!(lm.holders_of(o(7)).len(), 2);
        lm.assert_consistent();
    }

    #[test]
    fn try_request_denies_instead_of_queueing() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(7), LockMode::Write);
        assert_eq!(
            lm.try_request(t(2), o(7), LockMode::Read),
            RequestOutcome::Denied
        );
        assert_eq!(lm.waiting_on(t(2)), None);
        // Upgrade denial.
        lm.request(t(2), o(8), LockMode::Read);
        lm.request(t(3), o(8), LockMode::Read);
        assert_eq!(
            lm.try_request(t(2), o(8), LockMode::Write),
            RequestOutcome::Denied
        );
        let (_, _, denials) = lm.counters();
        assert_eq!(denials, 2);
        lm.assert_consistent();
    }

    #[test]
    fn classic_two_txn_deadlock() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(1), LockMode::Write);
        lm.request(t(2), o(2), LockMode::Write);
        assert_eq!(
            lm.request(t(1), o(2), LockMode::Read),
            RequestOutcome::Queued
        );
        assert!(lm.find_deadlock(t(1)).is_none());
        assert_eq!(
            lm.request(t(2), o(1), LockMode::Read),
            RequestOutcome::Queued
        );
        let cycle = lm.find_deadlock(t(2)).expect("deadlock expected");
        let mut c = cycle.clone();
        c.sort();
        assert_eq!(c, vec![t(1), t(2)]);
        lm.assert_consistent();
    }

    #[test]
    fn upgrade_upgrade_deadlock() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(7), LockMode::Read);
        lm.request(t(2), o(7), LockMode::Read);
        lm.request(t(1), o(7), LockMode::Write);
        lm.request(t(2), o(7), LockMode::Write);
        let cycle = lm.find_deadlock(t(2)).expect("upgrade deadlock");
        let mut c = cycle;
        c.sort();
        assert_eq!(c, vec![t(1), t(2)]);
        lm.assert_consistent();
    }

    #[test]
    fn queue_order_deadlock_is_detected() {
        // t1 holds read on A. t2 write-waits on A. t3 read-waits on A
        // (behind t2). t2's wait depends on t1; if t1 then waits on
        // something t3 holds, the cycle goes through queue-ahead edges.
        let mut lm = LockManager::new();
        lm.request(t(1), o(1), LockMode::Read);
        lm.request(t(3), o(2), LockMode::Write);
        lm.request(t(2), o(1), LockMode::Write); // waits on t1
        lm.request(t(3), o(1), LockMode::Read); // waits behind t2 (conflicting)
        assert_eq!(
            lm.request(t(1), o(2), LockMode::Read),
            RequestOutcome::Queued
        ); // waits on t3
        let cycle = lm.find_deadlock(t(1)).expect("3-cycle through queue edge");
        assert!(cycle.contains(&t(1)) && cycle.contains(&t(3)));
        lm.assert_consistent();
    }

    #[test]
    fn aborting_victim_breaks_deadlock() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(1), LockMode::Write);
        lm.request(t(2), o(2), LockMode::Write);
        lm.request(t(1), o(2), LockMode::Write);
        lm.request(t(2), o(1), LockMode::Write);
        assert!(lm.find_deadlock(t(2)).is_some());
        // Abort t2: its lock on o2 goes to t1; t1 unblocks.
        let grants = lm.release_all(t(2));
        assert_eq!(
            grants,
            vec![Grant {
                txn: t(1),
                obj: o(2),
                mode: LockMode::Write
            }]
        );
        assert!(lm.find_deadlock(t(1)).is_none());
        assert_eq!(lm.waiting_on(t(1)), None);
        assert_eq!(lm.locks_held(t(1)), 2);
        lm.assert_consistent();
    }

    #[test]
    fn release_of_waiter_unblocks_queue_behind_it() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(7), LockMode::Read);
        lm.request(t(2), o(7), LockMode::Write); // queued
        lm.request(t(3), o(7), LockMode::Read); // queued behind writer
                                                // Abort the queued writer: t3's read becomes grantable.
        let grants = lm.release_all(t(2));
        assert_eq!(
            grants,
            vec![Grant {
                txn: t(3),
                obj: o(7),
                mode: LockMode::Read
            }]
        );
        lm.assert_consistent();
    }

    #[test]
    fn release_all_idempotent_for_unknown_txn() {
        let mut lm = LockManager::new();
        assert!(lm.release_all(t(99)).is_empty());
        lm.assert_consistent();
    }

    #[test]
    fn counters_track_activity() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(1), LockMode::Read);
        lm.request(t(2), o(1), LockMode::Write);
        lm.try_request(t(3), o(1), LockMode::Write);
        let (grants, blocks, denials) = lm.counters();
        assert_eq!((grants, blocks, denials), (1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "outstanding lock request")]
    fn double_wait_panics() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(1), LockMode::Write);
        lm.request(t(2), o(1), LockMode::Write);
        lm.request(t(2), o(2), LockMode::Read);
    }

    #[test]
    fn blockers_reports_conflicts() {
        let mut lm = LockManager::new();
        assert!(lm.blockers(t(1), o(7), LockMode::Write).is_empty());
        lm.request(t(1), o(7), LockMode::Read);
        lm.request(t(2), o(7), LockMode::Read);
        // A third read is free; a write waits for both readers.
        assert!(lm.blockers(t(3), o(7), LockMode::Read).is_empty());
        let mut b = lm.blockers(t(3), o(7), LockMode::Write);
        b.sort();
        assert_eq!(b, vec![t(1), t(2)]);
        // An upgrade by t1 waits only for t2.
        assert_eq!(lm.blockers(t(1), o(7), LockMode::Write), vec![t(2)]);
        // Holding a write means no blockers for anything.
        lm.release_all(t(2));
        lm.request(t(1), o(7), LockMode::Write);
        assert!(lm.blockers(t(1), o(7), LockMode::Read).is_empty());
        assert!(lm.blockers(t(1), o(7), LockMode::Write).is_empty());
        lm.assert_consistent();
    }

    #[test]
    fn blockers_includes_queued_waiters() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(7), LockMode::Read);
        lm.request(t(2), o(7), LockMode::Write); // queued
                                                 // A new read waits for the queued writer (no overtaking).
        assert_eq!(lm.blockers(t(3), o(7), LockMode::Read), vec![t(2)]);
        // A new write waits for the read holder and the queued writer.
        let mut b = lm.blockers(t(3), o(7), LockMode::Write);
        b.sort();
        assert_eq!(b, vec![t(1), t(2)]);
    }

    #[test]
    fn release_empties_entries_in_place() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(1), LockMode::Write);
        lm.release_all(t(1));
        assert!(lm.holders_of(o(1)).is_empty(), "entry should be emptied");
        assert_eq!(lm.locks_held(t(1)), 0);
        assert_eq!(lm.locks_in_table(), 0);
        lm.assert_consistent();
    }

    #[test]
    fn occupancy_counter_tracks_holders() {
        let mut lm = LockManager::new();
        assert_eq!(lm.locks_in_table(), 0);
        lm.request(t(1), o(1), LockMode::Read);
        lm.request(t(2), o(1), LockMode::Read);
        lm.request(t(1), o(2), LockMode::Write);
        assert_eq!(lm.locks_in_table(), 3);
        // In-place upgrade does not change occupancy.
        lm.release_all(t(2));
        lm.request(t(1), o(1), LockMode::Write);
        assert_eq!(lm.locks_in_table(), 2);
        lm.release_all(t(1));
        assert_eq!(lm.locks_in_table(), 0);
        lm.assert_consistent();
    }

    #[test]
    fn colliding_txn_ids_grow_slot_array() {
        // Two live transactions whose ids collide modulo the default slot
        // count (64) must both be representable.
        let mut lm = LockManager::new();
        lm.request(t(1), o(1), LockMode::Write);
        lm.request(t(65), o(2), LockMode::Write);
        assert_eq!(lm.holds(t(1), o(1)), Some(LockMode::Write));
        assert_eq!(lm.holds(t(65), o(2)), Some(LockMode::Write));
        assert_eq!(lm.locks_held(t(1)), 1);
        assert_eq!(lm.locks_held(t(65)), 1);
        lm.assert_consistent();
        // And a queued collision too.
        assert_eq!(
            lm.request(t(129), o(1), LockMode::Read),
            RequestOutcome::Queued
        );
        assert_eq!(lm.waiting_on(t(129)), Some(o(1)));
        lm.assert_consistent();
        let grants = lm.release_all(t(1));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].txn, t(129));
        lm.assert_consistent();
    }

    #[test]
    fn entry_slots_recycle_across_objects() {
        // Locking n distinct objects sequentially must not grow the pool
        // past the concurrency high-water mark: each release retires the
        // entry and the next object reuses it.
        let mut lm = LockManager::new();
        for i in 0..1000u64 {
            lm.request(t(1), o(i * 97), LockMode::Write);
            lm.release_all(t(1));
            lm.assert_consistent();
        }
        assert_eq!(lm.entry_slots(), 1, "pool grew despite sequential reuse");
        assert_eq!(lm.peak_locks_in_table(), 1);
        // Two objects at once needs two slots, no more.
        lm.request(t(1), o(5), LockMode::Read);
        lm.request(t(2), o(6), LockMode::Read);
        assert_eq!(lm.entry_slots(), 2);
        lm.release_all(t(1));
        lm.release_all(t(2));
        lm.assert_consistent();
    }

    #[test]
    fn huge_object_ids_stay_sparse() {
        // db_size = 10^8-style ids: memory must follow locks in flight.
        let mut lm = LockManager::with_capacity(100_000_000, 8);
        for i in 0..100u64 {
            lm.request(t(i % 8), o(99_999_999 - i * 1_000_003), LockMode::Read);
        }
        assert_eq!(lm.locks_in_table(), 100);
        assert_eq!(lm.entry_slots(), 100);
        lm.assert_consistent();
        for i in 0..8 {
            lm.release_all(t(i));
        }
        assert_eq!(lm.locks_in_table(), 0);
        lm.assert_consistent();
    }

    #[test]
    fn canceling_sole_waiter_retires_entry() {
        // A waiter queued behind a holder on one object, canceled after the
        // holder already released a *different* object, must leave no empty
        // indexed entry behind.
        let mut lm = LockManager::new();
        lm.request(t(1), o(7), LockMode::Write);
        lm.request(t(2), o(7), LockMode::Read); // queued
        let grants = lm.release_all(t(1)); // t2 granted
        assert_eq!(grants.len(), 1);
        lm.release_all(t(2));
        assert_eq!(lm.entry_slots(), 1);
        lm.assert_consistent();
        // Now: waiter is the only occupant (holder aborts first), then the
        // waiter itself aborts — both paths must retire the entry.
        lm.request(t(3), o(9), LockMode::Write);
        lm.request(t(4), o(9), LockMode::Write); // queued
        lm.release_all(t(4)); // cancel the queued request only
        assert_eq!(lm.queue_len(o(9)), 0);
        lm.release_all(t(3));
        assert_eq!(lm.locks_in_table(), 0);
        lm.assert_consistent();
    }

    #[test]
    fn slot_reuse_after_release() {
        // Sequential transactions mapping to the same slot (engine pattern:
        // one live txn per terminal) reuse it without growth.
        let mut lm = LockManager::with_capacity(16, 4);
        for serial in 0..100u64 {
            let id = t(serial * 4 + 2); // terminal 2
            lm.request(id, o(serial % 16), LockMode::Write);
            assert_eq!(lm.locks_held(id), 1);
            lm.release_all(id);
            assert_eq!(lm.locks_held(id), 0);
        }
        lm.assert_consistent();
    }
}
