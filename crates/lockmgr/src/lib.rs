//! `ccsim-lockmgr` — the locking substrate of the study.
//!
//! Implements strict two-phase locking with read/write modes, in-place and
//! queued lock upgrades, per-object FCFS queues, and deadlock detection over
//! an on-demand waits-for graph. Two request flavors serve the paper's two
//! locking algorithms:
//!
//! * [`LockManager::request`] queues on conflict — the **blocking**
//!   algorithm (dynamic 2PL; the caller runs [`LockManager::find_deadlock`]
//!   after each block and restarts a victim from the returned cycle);
//! * [`LockManager::try_request`] denies on conflict — the
//!   **immediate-restart** algorithm aborts the requester instead of queueing.
//!
//! The crate is purely logical: it knows nothing about simulated time or
//! resources, which keeps it independently testable.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod graph;
mod manager;

pub use graph::find_cycle_through;
pub use manager::{Grant, LockManager, LockMode, RequestOutcome};
