//! Cycle detection over a dynamically supplied waits-for relation.
//!
//! The lock manager materializes waits-for edges on demand from its lock
//! table; this module provides the generic depth-first search that finds a
//! cycle through a given start node. Because every transaction has at most
//! one outstanding lock request, the graph's out-degree is small and the
//! search is cheap.
//!
//! The successor callback appends into a caller-provided buffer backed by a
//! single shared arena, so the whole search performs a handful of `Vec`
//! allocations total instead of one per visited node.

use ccsim_workload::TxnId;

/// One DFS stack frame: the slice of the successor arena belonging to this
/// node, plus the absolute cursor of the next successor to try.
struct Frame {
    begin: usize,
    cursor: usize,
    end: usize,
}

/// Find a cycle through `start`, if one exists, following `successors`.
///
/// `successors(t, out)` must append `t`'s successors to `out` (and touch
/// nothing already in it).
///
/// Returns the cycle as a list of transactions `[start, ..., t_k]` such that
/// each waits for the next and `t_k` waits for `start`. Only cycles through
/// `start` are sought: deadlock detection runs each time a transaction
/// blocks, and a new edge can only create cycles through the newly blocked
/// transaction.
pub fn find_cycle_through<F>(start: TxnId, mut successors: F) -> Option<Vec<TxnId>>
where
    F: FnMut(TxnId, &mut Vec<TxnId>),
{
    // Iterative DFS keeping the current path for cycle reconstruction.
    // Successor lists live stacked in one arena; a frame's slice is
    // truncated away when the frame pops.
    let mut path: Vec<TxnId> = vec![start];
    let mut visited: Vec<TxnId> = vec![start];
    let mut arena: Vec<TxnId> = Vec::new();
    successors(start, &mut arena);
    let mut frames: Vec<Frame> = vec![Frame {
        begin: 0,
        cursor: 0,
        end: arena.len(),
    }];

    loop {
        let frame = frames.last_mut()?;
        if frame.cursor >= frame.end {
            let begin = frame.begin;
            frames.pop();
            arena.truncate(begin);
            path.pop();
            continue;
        }
        let next = arena[frame.cursor];
        frame.cursor += 1;
        if next == start {
            return Some(path);
        }
        if visited.contains(&next) {
            continue;
        }
        visited.push(next);
        path.push(next);
        let begin = arena.len();
        successors(next, &mut arena);
        frames.push(Frame {
            begin,
            cursor: begin,
            end: arena.len(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn txn(v: u64) -> TxnId {
        TxnId(v)
    }

    fn graph(edges: &[(u64, u64)]) -> HashMap<TxnId, Vec<TxnId>> {
        let mut g: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        for &(a, b) in edges {
            g.entry(txn(a)).or_default().push(txn(b));
        }
        g
    }

    fn successors(g: &HashMap<TxnId, Vec<TxnId>>) -> impl FnMut(TxnId, &mut Vec<TxnId>) + '_ {
        move |t, out: &mut Vec<TxnId>| {
            if let Some(succ) = g.get(&t) {
                out.extend_from_slice(succ);
            }
        }
    }

    #[test]
    fn no_cycle_in_dag() {
        let g = graph(&[(1, 2), (2, 3), (1, 3)]);
        assert!(find_cycle_through(txn(1), successors(&g)).is_none());
    }

    #[test]
    fn self_loop() {
        let g = graph(&[(1, 1)]);
        let c = find_cycle_through(txn(1), successors(&g)).unwrap();
        assert_eq!(c, vec![txn(1)]);
    }

    #[test]
    fn two_cycle() {
        let g = graph(&[(1, 2), (2, 1)]);
        let c = find_cycle_through(txn(1), successors(&g)).unwrap();
        assert_eq!(c, vec![txn(1), txn(2)]);
    }

    #[test]
    fn long_cycle() {
        let g = graph(&[(1, 2), (2, 3), (3, 4), (4, 1)]);
        let c = find_cycle_through(txn(1), successors(&g)).unwrap();
        assert_eq!(c, vec![txn(1), txn(2), txn(3), txn(4)]);
    }

    #[test]
    fn cycle_not_through_start_is_ignored() {
        // 2 -> 3 -> 2 is a cycle, but 1 only feeds into it.
        let g = graph(&[(1, 2), (2, 3), (3, 2)]);
        assert!(find_cycle_through(txn(1), successors(&g)).is_none());
    }

    #[test]
    fn picks_cycle_among_branches() {
        // Branch 1->5 dead-ends; 1->2->3->1 cycles.
        let g = graph(&[(1, 5), (1, 2), (2, 3), (3, 1), (5, 6)]);
        let c = find_cycle_through(txn(1), successors(&g)).unwrap();
        assert_eq!(c, vec![txn(1), txn(2), txn(3)]);
    }

    #[test]
    fn diamond_no_cycle() {
        let g = graph(&[(1, 2), (1, 3), (2, 4), (3, 4)]);
        assert!(find_cycle_through(txn(1), successors(&g)).is_none());
    }

    #[test]
    fn large_chain_terminates() {
        let edges: Vec<(u64, u64)> = (0..10_000).map(|i| (i, i + 1)).collect();
        let g = graph(&edges);
        assert!(find_cycle_through(txn(0), successors(&g)).is_none());
    }

    #[test]
    fn arena_frames_unwind_correctly() {
        // A deep dead-end branch explored before the cycling branch must
        // not leave stale successors behind when its frames unwind.
        let g = graph(&[
            (1, 10),
            (10, 11),
            (11, 12),
            (12, 13),
            (1, 2),
            (2, 3),
            (3, 1),
        ]);
        let c = find_cycle_through(txn(1), successors(&g)).unwrap();
        assert_eq!(c, vec![txn(1), txn(2), txn(3)]);
    }
}
