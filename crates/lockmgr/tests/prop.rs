//! Property-based tests: the lock manager maintains its invariants under
//! arbitrary interleavings of requests, denials, and releases, and never
//! violates mutual exclusion.

use ccsim_lockmgr::{LockManager, LockMode, RequestOutcome};
use ccsim_workload::{ObjId, TxnId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Request { txn: u64, obj: u64, write: bool },
    TryRequest { txn: u64, obj: u64, write: bool },
    ReleaseAll { txn: u64 },
}

fn op_strategy(txns: u64, objs: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..txns, 0..objs, any::<bool>()).prop_map(|(txn, obj, write)| Op::Request {
            txn,
            obj,
            write
        }),
        (0..txns, 0..objs, any::<bool>()).prop_map(|(txn, obj, write)| Op::TryRequest {
            txn,
            obj,
            write
        }),
        (0..txns).prop_map(|txn| Op::ReleaseAll { txn }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replay random operation sequences; after every step the manager's
    /// internal invariants must hold, and writers must be exclusive.
    #[test]
    fn invariants_hold_under_random_interleavings(
        ops in proptest::collection::vec(op_strategy(8, 6), 1..300)
    ) {
        let mut lm = LockManager::new();
        // A transaction with an outstanding queued request may not issue
        // another; track blocked transactions and skip their requests, and
        // track aborted/committed ones so ids can be reused via release.
        let mut blocked: std::collections::HashSet<u64> = Default::default();
        for op in ops {
            match op {
                Op::Request { txn, obj, write } => {
                    if blocked.contains(&txn) {
                        continue;
                    }
                    let mode = if write { LockMode::Write } else { LockMode::Read };
                    match lm.request(TxnId(txn), ObjId(obj), mode) {
                        RequestOutcome::Queued => {
                            blocked.insert(txn);
                            // Deadlock detection must never panic; resolve by
                            // aborting the youngest (max id) in the cycle.
                            while let Some(cycle) = lm.find_deadlock(TxnId(txn)) {
                                let victim = *cycle.iter().max().unwrap();
                                let grants = lm.release_all(victim);
                                blocked.remove(&victim.0);
                                for g in grants {
                                    blocked.remove(&g.txn.0);
                                }
                                if lm.waiting_on(TxnId(txn)).is_none() {
                                    break;
                                }
                            }
                        }
                        RequestOutcome::Granted => {}
                        RequestOutcome::Denied => unreachable!("request never denies"),
                    }
                }
                Op::TryRequest { txn, obj, write } => {
                    if blocked.contains(&txn) {
                        continue;
                    }
                    let mode = if write { LockMode::Write } else { LockMode::Read };
                    let out = lm.try_request(TxnId(txn), ObjId(obj), mode);
                    prop_assert!(out != RequestOutcome::Queued, "try_request queued");
                }
                Op::ReleaseAll { txn } => {
                    let grants = lm.release_all(TxnId(txn));
                    blocked.remove(&txn);
                    for g in grants {
                        blocked.remove(&g.txn.0);
                    }
                }
            }
            lm.assert_consistent();
            // Mutual exclusion: no object may have a writer plus anyone else.
            for obj in 0..6 {
                let holders = lm.holders_of(ObjId(obj));
                let writers = holders
                    .iter()
                    .filter(|(_, m)| *m == LockMode::Write)
                    .count();
                if writers > 0 {
                    prop_assert_eq!(holders.len(), 1, "writer not exclusive on obj{}", obj);
                }
            }
        }
    }

    /// After releasing everything, the table is empty — no leaks.
    #[test]
    fn full_release_leaves_no_state(
        ops in proptest::collection::vec(op_strategy(6, 4), 1..100)
    ) {
        let mut lm = LockManager::new();
        let mut blocked: std::collections::HashSet<u64> = Default::default();
        for op in ops {
            if let Op::Request { txn, obj, write } = op {
                if blocked.contains(&txn) {
                    continue;
                }
                let mode = if write { LockMode::Write } else { LockMode::Read };
                if lm.request(TxnId(txn), ObjId(obj), mode) == RequestOutcome::Queued {
                    blocked.insert(txn);
                }
            }
        }
        for txn in 0..6 {
            lm.release_all(TxnId(txn));
        }
        lm.assert_consistent();
        for txn in 0..6 {
            prop_assert_eq!(lm.locks_held(TxnId(txn)), 0);
            prop_assert!(lm.waiting_on(TxnId(txn)).is_none());
        }
        for obj in 0..4 {
            prop_assert!(lm.holders_of(ObjId(obj)).is_empty());
            prop_assert_eq!(lm.queue_len(ObjId(obj)), 0);
        }
    }
}
