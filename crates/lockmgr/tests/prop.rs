//! Property-based tests: the lock manager maintains its invariants under
//! arbitrary interleavings of requests, denials, and releases, and never
//! violates mutual exclusion. The sparse hashed table is additionally
//! cross-checked, operation by operation, against a naive dense-`Vec`
//! reference model for grant order, deadlock detection, and exact peak-lock
//! accounting.

use ccsim_lockmgr::{Grant, LockManager, LockMode, RequestOutcome};
use ccsim_workload::{ObjId, TxnId};
use proptest::prelude::*;

/// A deliberately naive dense reference model of the lock table: one
/// `Vec` entry per object (the pre-sparse storage layout), linear scans
/// everywhere, and the exact queueing discipline the real manager
/// documents — FCFS with upgrades queueing ahead of plain waiters.
mod dense_ref {
    use super::{Grant, LockMode, ObjId, RequestOutcome, TxnId};
    use std::collections::BTreeMap;

    #[derive(Default, Clone)]
    struct Entry {
        holders: Vec<(u64, LockMode)>,
        /// `(txn, mode, is_upgrade)` in queue order.
        queue: Vec<(u64, LockMode, bool)>,
    }

    impl Entry {
        fn holder_mode(&self, txn: u64) -> Option<LockMode> {
            self.holders
                .iter()
                .find(|(t, _)| *t == txn)
                .map(|&(_, m)| m)
        }
        fn compatible_for(&self, txn: u64, mode: LockMode) -> bool {
            self.holders
                .iter()
                .all(|&(t, m)| t == txn || m.compatible_with(mode))
        }
    }

    #[derive(Default)]
    pub struct DenseRef {
        table: Vec<Entry>,
        /// Held objects per transaction, in acquisition order (the release
        /// order the real manager documents).
        held: BTreeMap<u64, Vec<u64>>,
        waiting: BTreeMap<u64, u64>,
        held_count: usize,
        peak: usize,
    }

    impl DenseRef {
        pub fn new(db_size: usize) -> Self {
            DenseRef {
                table: vec![Entry::default(); db_size],
                ..DenseRef::default()
            }
        }

        pub fn request(
            &mut self,
            txn: u64,
            obj: u64,
            mode: LockMode,
            may_queue: bool,
        ) -> RequestOutcome {
            assert!(!self.waiting.contains_key(&txn));
            let entry = &mut self.table[obj as usize];
            match entry.holder_mode(txn) {
                Some(LockMode::Write) => RequestOutcome::Granted,
                Some(LockMode::Read) if mode == LockMode::Read => RequestOutcome::Granted,
                Some(LockMode::Read) => {
                    if entry.holders.len() == 1 {
                        entry.holders[0].1 = LockMode::Write;
                        RequestOutcome::Granted
                    } else if may_queue {
                        let pos = entry.queue.iter().take_while(|w| w.2).count();
                        entry.queue.insert(pos, (txn, LockMode::Write, true));
                        self.waiting.insert(txn, obj);
                        RequestOutcome::Queued
                    } else {
                        RequestOutcome::Denied
                    }
                }
                None => {
                    if entry.queue.is_empty() && entry.compatible_for(txn, mode) {
                        entry.holders.push((txn, mode));
                        self.held_count += 1;
                        self.peak = self.peak.max(self.held_count);
                        self.held.entry(txn).or_default().push(obj);
                        RequestOutcome::Granted
                    } else if may_queue {
                        entry.queue.push((txn, mode, false));
                        self.waiting.insert(txn, obj);
                        RequestOutcome::Queued
                    } else {
                        RequestOutcome::Denied
                    }
                }
            }
        }

        fn drain(entry: &mut Entry, obj: u64, held_count: &mut usize, grants: &mut Vec<Grant>) {
            while let Some(&(txn, mode, is_upgrade)) = entry.queue.first() {
                if is_upgrade {
                    if entry.holders.len() == 1 && entry.holders[0].0 == txn {
                        entry.holders[0].1 = LockMode::Write;
                        entry.queue.remove(0);
                        grants.push(Grant {
                            txn: TxnId(txn),
                            obj: ObjId(obj),
                            mode: LockMode::Write,
                        });
                    } else {
                        break;
                    }
                } else if entry.compatible_for(txn, mode) {
                    entry.queue.remove(0);
                    entry.holders.push((txn, mode));
                    *held_count += 1;
                    grants.push(Grant {
                        txn: TxnId(txn),
                        obj: ObjId(obj),
                        mode,
                    });
                } else {
                    break;
                }
            }
        }

        pub fn release_all(&mut self, txn: u64) -> Vec<Grant> {
            let mut grants = Vec::new();
            if self.held.get(&txn).is_none_or(Vec::is_empty) && !self.waiting.contains_key(&txn) {
                return grants;
            }
            if let Some(obj) = self.waiting.remove(&txn) {
                let entry = &mut self.table[obj as usize];
                entry.queue.retain(|w| w.0 != txn);
                Self::drain(entry, obj, &mut self.held_count, &mut grants);
            }
            for obj in self.held.remove(&txn).unwrap_or_default() {
                let entry = &mut self.table[obj as usize];
                let before = entry.holders.len();
                entry.holders.retain(|(t, _)| *t != txn);
                self.held_count -= before - entry.holders.len();
                Self::drain(entry, obj, &mut self.held_count, &mut grants);
            }
            for g in &grants {
                self.waiting.remove(&g.txn.0);
                let held = self.held.entry(g.txn.0).or_default();
                if !held.contains(&g.obj.0) {
                    held.push(g.obj.0);
                }
            }
            self.peak = self.peak.max(self.held_count);
            grants
        }

        fn waits_for(&self, txn: u64) -> Vec<u64> {
            let Some(&obj) = self.waiting.get(&txn) else {
                return Vec::new();
            };
            let entry = &self.table[obj as usize];
            let me = entry.queue.iter().position(|w| w.0 == txn).unwrap();
            let my_mode = entry.queue[me].1;
            let mut out = Vec::new();
            for &(holder, hmode) in &entry.holders {
                if holder != txn && !hmode.compatible_with(my_mode) {
                    out.push(holder);
                }
            }
            for &(ahead, amode, _) in &entry.queue[..me] {
                if ahead != txn && !amode.compatible_with(my_mode) {
                    out.push(ahead);
                }
            }
            out
        }

        /// Is `txn` on a waits-for cycle through itself?
        pub fn has_deadlock(&self, txn: u64) -> bool {
            if !self.waiting.contains_key(&txn) {
                return false;
            }
            let mut seen = std::collections::BTreeSet::new();
            let mut stack = self.waits_for(txn);
            while let Some(t) = stack.pop() {
                if t == txn {
                    return true;
                }
                if seen.insert(t) {
                    stack.extend(self.waits_for(t));
                }
            }
            false
        }

        pub fn locks_held(&self, txn: u64) -> usize {
            self.held.get(&txn).map_or(0, Vec::len)
        }
        pub fn waiting_on(&self, txn: u64) -> Option<u64> {
            self.waiting.get(&txn).copied()
        }
        pub fn holders_of(&self, obj: u64) -> &[(u64, LockMode)] {
            &self.table[obj as usize].holders
        }
        pub fn queue_len(&self, obj: u64) -> usize {
            self.table[obj as usize].queue.len()
        }
        pub fn locks_in_table(&self) -> usize {
            self.held_count
        }
        pub fn peak_locks_in_table(&self) -> usize {
            self.peak
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Request { txn: u64, obj: u64, write: bool },
    TryRequest { txn: u64, obj: u64, write: bool },
    ReleaseAll { txn: u64 },
}

fn op_strategy(txns: u64, objs: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..txns, 0..objs, any::<bool>()).prop_map(|(txn, obj, write)| Op::Request {
            txn,
            obj,
            write
        }),
        (0..txns, 0..objs, any::<bool>()).prop_map(|(txn, obj, write)| Op::TryRequest {
            txn,
            obj,
            write
        }),
        (0..txns).prop_map(|txn| Op::ReleaseAll { txn }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replay random operation sequences; after every step the manager's
    /// internal invariants must hold, and writers must be exclusive.
    #[test]
    fn invariants_hold_under_random_interleavings(
        ops in proptest::collection::vec(op_strategy(8, 6), 1..300)
    ) {
        let mut lm = LockManager::new();
        // A transaction with an outstanding queued request may not issue
        // another; track blocked transactions and skip their requests, and
        // track aborted/committed ones so ids can be reused via release.
        let mut blocked: std::collections::HashSet<u64> = Default::default();
        for op in ops {
            match op {
                Op::Request { txn, obj, write } => {
                    if blocked.contains(&txn) {
                        continue;
                    }
                    let mode = if write { LockMode::Write } else { LockMode::Read };
                    match lm.request(TxnId(txn), ObjId(obj), mode) {
                        RequestOutcome::Queued => {
                            blocked.insert(txn);
                            // Deadlock detection must never panic; resolve by
                            // aborting the youngest (max id) in the cycle.
                            while let Some(cycle) = lm.find_deadlock(TxnId(txn)) {
                                let victim = *cycle.iter().max().unwrap();
                                let grants = lm.release_all(victim);
                                blocked.remove(&victim.0);
                                for g in grants {
                                    blocked.remove(&g.txn.0);
                                }
                                if lm.waiting_on(TxnId(txn)).is_none() {
                                    break;
                                }
                            }
                        }
                        RequestOutcome::Granted => {}
                        RequestOutcome::Denied => unreachable!("request never denies"),
                    }
                }
                Op::TryRequest { txn, obj, write } => {
                    if blocked.contains(&txn) {
                        continue;
                    }
                    let mode = if write { LockMode::Write } else { LockMode::Read };
                    let out = lm.try_request(TxnId(txn), ObjId(obj), mode);
                    prop_assert!(out != RequestOutcome::Queued, "try_request queued");
                }
                Op::ReleaseAll { txn } => {
                    let grants = lm.release_all(TxnId(txn));
                    blocked.remove(&txn);
                    for g in grants {
                        blocked.remove(&g.txn.0);
                    }
                }
            }
            lm.assert_consistent();
            // Mutual exclusion: no object may have a writer plus anyone else.
            for obj in 0..6 {
                let holders = lm.holders_of(ObjId(obj));
                let writers = holders
                    .iter()
                    .filter(|(_, m)| *m == LockMode::Write)
                    .count();
                if writers > 0 {
                    prop_assert_eq!(holders.len(), 1, "writer not exclusive on obj{}", obj);
                }
            }
        }
    }

    /// The sparse hashed table is observationally identical to the dense
    /// reference model under interleaved acquire / release / restart
    /// sequences: same request outcomes, same grant order, same deadlock
    /// verdicts, and exact agreement on per-txn and table-wide lock
    /// accounting including the peak.
    #[test]
    fn sparse_table_matches_dense_reference(
        ops in proptest::collection::vec(op_strategy(8, 6), 1..400)
    ) {
        let mut lm = LockManager::with_capacity(6, 8);
        let mut dr = dense_ref::DenseRef::new(6);
        let mut blocked: std::collections::HashSet<u64> = Default::default();
        for op in ops {
            match op {
                Op::Request { txn, obj, write } => {
                    if blocked.contains(&txn) {
                        continue;
                    }
                    let mode = if write { LockMode::Write } else { LockMode::Read };
                    let oi = lm.request(TxnId(txn), ObjId(obj), mode);
                    let or = dr.request(txn, obj, mode, true);
                    prop_assert_eq!(oi, or, "request outcome diverged");
                    if oi == RequestOutcome::Queued {
                        blocked.insert(txn);
                        // Deadlock resolution: abort the youngest (max id)
                        // member of the implementation's cycle in *both*
                        // models — a restart — and compare the fallout.
                        loop {
                            let cycle = lm.find_deadlock(TxnId(txn));
                            prop_assert_eq!(
                                cycle.is_some(),
                                dr.has_deadlock(txn),
                                "deadlock detection diverged"
                            );
                            let Some(cycle) = cycle else { break };
                            let victim = *cycle.iter().max().unwrap();
                            let gi = lm.release_all(victim);
                            let gr = dr.release_all(victim.0);
                            prop_assert_eq!(&gi, &gr, "restart grant order diverged");
                            blocked.remove(&victim.0);
                            for g in &gi {
                                blocked.remove(&g.txn.0);
                            }
                            if lm.waiting_on(TxnId(txn)).is_none() {
                                break;
                            }
                        }
                    }
                }
                Op::TryRequest { txn, obj, write } => {
                    if blocked.contains(&txn) {
                        continue;
                    }
                    let mode = if write { LockMode::Write } else { LockMode::Read };
                    let oi = lm.try_request(TxnId(txn), ObjId(obj), mode);
                    let or = dr.request(txn, obj, mode, false);
                    prop_assert_eq!(oi, or, "try_request outcome diverged");
                }
                Op::ReleaseAll { txn } => {
                    let gi = lm.release_all(TxnId(txn));
                    let gr = dr.release_all(txn);
                    prop_assert_eq!(&gi, &gr, "release grant order diverged");
                    blocked.remove(&txn);
                    for g in &gi {
                        blocked.remove(&g.txn.0);
                    }
                }
            }
            // Full observable-state comparison after every operation.
            prop_assert_eq!(lm.locks_in_table(), dr.locks_in_table());
            prop_assert_eq!(
                lm.peak_locks_in_table(),
                dr.peak_locks_in_table(),
                "peak lock accounting diverged"
            );
            for t in 0..8u64 {
                prop_assert_eq!(lm.locks_held(TxnId(t)), dr.locks_held(t));
                prop_assert_eq!(
                    lm.waiting_on(TxnId(t)).map(|o| o.0),
                    dr.waiting_on(t)
                );
            }
            for o in 0..6u64 {
                let hi: Vec<(u64, LockMode)> = lm
                    .holders_of(ObjId(o))
                    .iter()
                    .map(|&(t, m)| (t.0, m))
                    .collect();
                prop_assert_eq!(hi, dr.holders_of(o).to_vec(), "holders diverged on obj{}", o);
                prop_assert_eq!(lm.queue_len(ObjId(o)), dr.queue_len(o));
            }
            lm.assert_consistent();
        }
    }

    /// The lockstep comparison again, with three twists aimed at the
    /// hashed index's probe path: object ids are remapped to arbitrary
    /// 64-bit keys (so home slots collide and cluster unpredictably instead
    /// of landing in Fibonacci-spread order), the table starts at minimum
    /// capacity (so the run crosses growth/rehash boundaries and the cached
    /// hash shift must track them), and `prefetch` is interleaved before
    /// every request and release. Prefetch is a pure hint — if it ever
    /// perturbed probe order, entry migration, or the peak-lock accounting,
    /// the dense reference (which has no hashing at all) would diverge.
    #[test]
    fn sparse_table_matches_dense_on_wide_keys_with_prefetch(
        salt in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(8, 6), 1..400)
    ) {
        // Injective for obj < 64: distinct top-6 bits, salt scrambles the
        // rest (including the bits the Fibonacci hash feeds the home slot).
        let wide = |o: u64| (o << 58) ^ (salt & ((1u64 << 58) - 1));
        let mut lm = LockManager::with_capacity(1, 8);
        let mut dr = dense_ref::DenseRef::new(6);
        let mut blocked: std::collections::HashSet<u64> = Default::default();
        let widen = |gs: &[Grant]| -> Vec<Grant> {
            gs.iter()
                .map(|g| Grant { txn: g.txn, obj: ObjId(wide(g.obj.0)), mode: g.mode })
                .collect()
        };
        for op in ops {
            match op {
                Op::Request { txn, obj, write } => {
                    if blocked.contains(&txn) {
                        continue;
                    }
                    let mode = if write { LockMode::Write } else { LockMode::Read };
                    lm.prefetch(ObjId(wide(obj)));
                    let oi = lm.request(TxnId(txn), ObjId(wide(obj)), mode);
                    let or = dr.request(txn, obj, mode, true);
                    prop_assert_eq!(oi, or, "request outcome diverged");
                    if oi == RequestOutcome::Queued {
                        blocked.insert(txn);
                        loop {
                            let cycle = lm.find_deadlock(TxnId(txn));
                            prop_assert_eq!(
                                cycle.is_some(),
                                dr.has_deadlock(txn),
                                "deadlock detection diverged"
                            );
                            let Some(cycle) = cycle else { break };
                            let victim = *cycle.iter().max().unwrap();
                            let gi = lm.release_all(victim);
                            let gr = dr.release_all(victim.0);
                            prop_assert_eq!(&gi, &widen(&gr), "restart grant order diverged");
                            blocked.remove(&victim.0);
                            for g in &gi {
                                blocked.remove(&g.txn.0);
                            }
                            if lm.waiting_on(TxnId(txn)).is_none() {
                                break;
                            }
                        }
                    }
                }
                Op::TryRequest { txn, obj, write } => {
                    if blocked.contains(&txn) {
                        continue;
                    }
                    let mode = if write { LockMode::Write } else { LockMode::Read };
                    lm.prefetch(ObjId(wide(obj)));
                    let oi = lm.try_request(TxnId(txn), ObjId(wide(obj)), mode);
                    let or = dr.request(txn, obj, mode, false);
                    prop_assert_eq!(oi, or, "try_request outcome diverged");
                }
                Op::ReleaseAll { txn } => {
                    let gi = lm.release_all(TxnId(txn));
                    let gr = dr.release_all(txn);
                    prop_assert_eq!(&gi, &widen(&gr), "release grant order diverged");
                    blocked.remove(&txn);
                    for g in &gi {
                        blocked.remove(&g.txn.0);
                    }
                }
            }
            // Probe-order-sensitive accounting: exact lock counts and the
            // peak must match a model with no hash table at all.
            prop_assert_eq!(lm.locks_in_table(), dr.locks_in_table());
            prop_assert_eq!(
                lm.peak_locks_in_table(),
                dr.peak_locks_in_table(),
                "peak lock accounting diverged"
            );
            for t in 0..8u64 {
                prop_assert_eq!(lm.locks_held(TxnId(t)), dr.locks_held(t));
                prop_assert_eq!(
                    lm.waiting_on(TxnId(t)).map(|o| o.0),
                    dr.waiting_on(t).map(wide)
                );
            }
            for o in 0..6u64 {
                lm.prefetch(ObjId(wide(o)));
                let hi: Vec<(u64, LockMode)> = lm
                    .holders_of(ObjId(wide(o)))
                    .iter()
                    .map(|&(t, m)| (t.0, m))
                    .collect();
                prop_assert_eq!(hi, dr.holders_of(o).to_vec(), "holders diverged on obj{}", o);
                prop_assert_eq!(lm.queue_len(ObjId(wide(o))), dr.queue_len(o));
            }
            lm.assert_consistent();
        }
    }

    /// After releasing everything, the table is empty — no leaks.
    #[test]
    fn full_release_leaves_no_state(
        ops in proptest::collection::vec(op_strategy(6, 4), 1..100)
    ) {
        let mut lm = LockManager::new();
        let mut blocked: std::collections::HashSet<u64> = Default::default();
        for op in ops {
            if let Op::Request { txn, obj, write } = op {
                if blocked.contains(&txn) {
                    continue;
                }
                let mode = if write { LockMode::Write } else { LockMode::Read };
                if lm.request(TxnId(txn), ObjId(obj), mode) == RequestOutcome::Queued {
                    blocked.insert(txn);
                }
            }
        }
        for txn in 0..6 {
            lm.release_all(TxnId(txn));
        }
        lm.assert_consistent();
        for txn in 0..6 {
            prop_assert_eq!(lm.locks_held(TxnId(txn)), 0);
            prop_assert!(lm.waiting_on(TxnId(txn)).is_none());
        }
        for obj in 0..4 {
            prop_assert!(lm.holders_of(ObjId(obj)).is_empty());
            prop_assert_eq!(lm.queue_len(ObjId(obj)), 0);
        }
    }
}
