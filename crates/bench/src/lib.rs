//! `ccsim-bench` — benchmark support code.
//!
//! The benches themselves live in `benches/`:
//!
//! * `figures` — one Criterion group per paper table/figure; each benchmark
//!   runs the reduced-fidelity simulation that regenerates that artifact
//!   (the full-fidelity regeneration is `repro <id>`).
//! * `engine` — microbenchmarks of the substrates (event calendar, lock
//!   manager, optimistic validator, workload generator) plus end-to-end
//!   simulated-events-per-second.
//! * `ablations` — design-choice ablations called out in DESIGN.md: deadlock
//!   victim policies, deadlock prevention vs. detection, restart-delay
//!   policies.

#![warn(missing_docs)]
#![warn(clippy::all)]

use ccsim_core::{Confidence, MetricsConfig};
use ccsim_des::SimDuration;

/// The metrics configuration benchmarks use: short but non-trivial, so a
/// benchmark iteration exercises warmup, measurement, and reporting.
#[must_use]
pub fn bench_metrics() -> MetricsConfig {
    MetricsConfig {
        warmup_batches: 1,
        batches: 3,
        batch_time: SimDuration::from_secs(20),
        confidence: Confidence::Ninety,
    }
}
