//! `throughput` — wall-clock engine throughput on the tracked reference
//! point (experiment 1's low-conflict setting, 10 000-page database,
//! mpl 50, 1 CPU / 2 disks).
//!
//! For each of the paper's three algorithms the binary runs `--reps`
//! independent repetitions of the same deterministic configuration,
//! takes the median events/sec, and reports:
//!
//! - `events_per_sec` — calendar events handled per wall-clock second,
//! - `commits_per_sec` — committed transactions per wall-clock second,
//! - peak calendar / lock-table occupancy (exact high-water marks).
//!
//! ```text
//! throughput [--reps 3] [--batches 600] [--mpl 50] [--db 10000]
//!            [--seed <u64>] [--floor-frac 0.30] [--perf] [--profile]
//!            [--workers 1] [--worker-sweep]
//!            [--scale] [--scale-db 100000000] [--scale-terms 1000000]
//!            [--scale-mpl 100000] [--scale-events 10000000]
//!            [--scale-floor-min 0] [--rss-slack 1.5]
//!            [--out BENCH_8.json] [--check BENCH_8.json]
//!            [--baseline BENCH_7.json] [--stages-from profile.json]
//! ```
//!
//! `--out` archives the measurements as JSON, including a conservative
//! `floor_events_per_sec` per algorithm (`floor-frac` x the measured
//! median — low enough to absorb CI-machine noise, high enough to catch
//! an order-of-magnitude regression). `--check <path>` re-measures and
//! exits nonzero if any algorithm falls below the archived floor; CI's
//! perf-smoke job runs exactly that. `--perf` adds per-algorithm
//! calendar-op counters (schedules/pops/cancels, the near-lane vs
//! overflow-heap split, and elided resource hops) to the report; the
//! counters are always embedded in `--out` JSON. `--baseline <path>`
//! embeds a comparison block into `--out`: this run's events/sec over
//! the events/sec archived in a previous benchmark file.
//!
//! `--profile` (requires a build with the `profile` feature, which turns
//! on `ccsim-core/stage-profiler`) additionally runs each measured point
//! once more with the in-engine stage profiler and prints the per-stage
//! cycle breakdown; the scale point's breakdown is embedded into `--out`
//! JSON. Because the instrumented build pays a timestamp per stage
//! switch, archives meant to carry *floors* should be produced by the
//! default build and given the breakdown via `--stages-from <path>`,
//! which copies the `"stages"` block out of a profile-build archive.
//! `--scale-floor-min <r>` raises the archived scale floor to at least
//! `r` events/sec (used to encode a required speedup over a previous
//! benchmark generation into the archive itself).
//!
//! `--workers <n>` runs every measurement with the engine's speculative
//! window-parallel mode at `n` worker threads (0/1 = sequential; results
//! are byte-identical at any count, so floors stay comparable).
//! `--worker-sweep` measures the full scale point at worker counts
//! {1, 2, 4, 8}: events/sec, speedup over the sequential lane, the
//! rollback/replay ratio, and per-lane busy fractions, verifying along the
//! way that every count produced the identical report, quantiles, and
//! event count. The sweep is archived in `--out` under `"workers"`
//! together with the host's core count; `--check` gates the best count's
//! events/sec against its archived floor — but only when the *current*
//! host has ≥ 2 cores, because a single-core host cannot express the
//! speedup (the archived `host_cores` records where the numbers came
//! from). The archive also records the required best-count speedup
//! (1.5x) plus, with `--baseline`, the informational absolute floor it
//! implied at archive time; `--check` enforces the speedup on hosts
//! with ≥ 4 cores as a *ratio* against the same host's fresh
//! sequential run, so runner clock speed cancels out of the gate.
//!
//! `--scale` adds the million-scale regime (the `exp-scale` catalog
//! point: a 10^8-page database, 10^6 terminals, mpl 10^5, infinite
//! resources) under an event budget: the run is cut off after
//! `--scale-events` calendar events and the partial window salvaged, so
//! the measurement is bounded no matter how large the regime. The scale
//! block archives events/sec with its floor, the streaming response
//! quantiles (P^2 — a histogram at this scale would dominate memory),
//! peak RSS (`VmHWM`, Linux) with a `--rss-slack` x ceiling, and a
//! fast-path ablation: a scaled-down dense point (a fifth of the
//! terminals and mpl, half the events — still hundreds of events per
//! lane bucket) run with and without the near-horizon calendar lane and
//! the uncontended-hop elision. The derived point keeps the working set
//! in cache so the ratio measures the data structures, not paging; both
//! toggles preserve the event sequence byte for byte, so the events/sec
//! ratio is a pure data-structure speedup. `--check` at a scale archive
//! verifies the events/sec floor, the RSS ceiling, and that the fast
//! paths still win (`fastpath_speedup > 1`).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use ccsim_core::{
    run_collecting, run_with_perf, CcAlgorithm, MetricsConfig, Params, PerfStats, Report,
    RunBudget, RunOutcome, SimConfig, StageProfile, StreamingQuantiles, STAGE_PROFILER_COMPILED,
};
use ccsim_des::{CalendarStats, SimDuration};
use ccsim_experiments::json;
use ccsim_experiments::write_atomic;

struct Cli {
    reps: u32,
    batches: u32,
    mpl: u32,
    db: u64,
    seed: u64,
    floor_frac: f64,
    perf: bool,
    profile: bool,
    workers: u32,
    worker_sweep: bool,
    scale: bool,
    scale_db: u64,
    scale_terms: u32,
    scale_mpl: u32,
    scale_events: u64,
    scale_floor_min: f64,
    rss_slack: f64,
    out: Option<PathBuf>,
    check: Option<PathBuf>,
    baseline: Option<PathBuf>,
    stages_from: Option<PathBuf>,
}

/// One algorithm's median-of-reps measurement.
struct Measurement {
    algo: CcAlgorithm,
    events_per_sec: f64,
    commits_per_sec: f64,
    events: u64,
    commits: u64,
    peak_calendar: usize,
    peak_lock_table: usize,
    /// Calendar-op counters from the median rep (identical across reps:
    /// every rep replays the same deterministic event sequence).
    calendar: CalendarStats,
    elided_cpu_hops: u64,
    elided_disk_hops: u64,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        reps: 3,
        batches: 600,
        mpl: 50,
        db: 10_000,
        seed: 0xCC85,
        floor_frac: 0.30,
        perf: false,
        profile: false,
        workers: 1,
        worker_sweep: false,
        scale: false,
        scale_db: 100_000_000,
        scale_terms: 1_000_000,
        scale_mpl: 100_000,
        scale_events: 10_000_000,
        scale_floor_min: 0.0,
        rss_slack: 1.5,
        out: None,
        check: None,
        baseline: None,
        stages_from: None,
    };
    let mut args = std::env::args().skip(1);
    let next_val = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => cli.reps = parse_num(&next_val(&mut args, "--reps")?)?,
            "--batches" => cli.batches = parse_num(&next_val(&mut args, "--batches")?)?,
            "--mpl" => cli.mpl = parse_num(&next_val(&mut args, "--mpl")?)?,
            "--db" => cli.db = parse_num(&next_val(&mut args, "--db")?)?,
            "--seed" => cli.seed = parse_num(&next_val(&mut args, "--seed")?)?,
            "--floor-frac" => {
                cli.floor_frac = parse_num(&next_val(&mut args, "--floor-frac")?)?;
            }
            "--perf" => cli.perf = true,
            "--profile" => cli.profile = true,
            "--workers" => cli.workers = parse_num(&next_val(&mut args, "--workers")?)?,
            "--worker-sweep" => cli.worker_sweep = true,
            "--scale" => cli.scale = true,
            "--scale-db" => cli.scale_db = parse_num(&next_val(&mut args, "--scale-db")?)?,
            "--scale-terms" => {
                cli.scale_terms = parse_num(&next_val(&mut args, "--scale-terms")?)?;
            }
            "--scale-mpl" => cli.scale_mpl = parse_num(&next_val(&mut args, "--scale-mpl")?)?,
            "--scale-events" => {
                cli.scale_events = parse_num(&next_val(&mut args, "--scale-events")?)?;
            }
            "--scale-floor-min" => {
                cli.scale_floor_min = parse_num(&next_val(&mut args, "--scale-floor-min")?)?;
            }
            "--rss-slack" => cli.rss_slack = parse_num(&next_val(&mut args, "--rss-slack")?)?,
            "--out" => cli.out = Some(PathBuf::from(next_val(&mut args, "--out")?)),
            "--check" => cli.check = Some(PathBuf::from(next_val(&mut args, "--check")?)),
            "--baseline" => {
                cli.baseline = Some(PathBuf::from(next_val(&mut args, "--baseline")?));
            }
            "--stages-from" => {
                cli.stages_from = Some(PathBuf::from(next_val(&mut args, "--stages-from")?));
            }
            other => return Err(format!("unknown flag {other} (see --help in the source)")),
        }
    }
    if cli.reps == 0 {
        return Err("--reps must be at least 1".to_string());
    }
    if !(0.0..1.0).contains(&cli.floor_frac) {
        return Err("--floor-frac must be in [0, 1)".to_string());
    }
    if cli.rss_slack < 1.0 {
        return Err("--rss-slack must be at least 1.0".to_string());
    }
    if cli.scale_events == 0 {
        return Err("--scale-events must be positive".to_string());
    }
    if cli.baseline.is_some() && cli.out.is_none() {
        return Err("--baseline requires --out (it is embedded in the archive)".to_string());
    }
    if cli.stages_from.is_some() && cli.out.is_none() {
        return Err("--stages-from requires --out (it is embedded in the archive)".to_string());
    }
    if cli.scale_floor_min < 0.0 {
        return Err("--scale-floor-min must be non-negative".to_string());
    }
    if cli.profile && !STAGE_PROFILER_COMPILED {
        return Err(
            "the stage profiler is not compiled into this binary; rebuild with \
             `cargo run --release -p ccsim-bench --features profile --bin throughput`"
                .to_string(),
        );
    }
    Ok(cli)
}

fn parse_num<T: std::str::FromStr>(v: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    v.parse().map_err(|e| format!("bad value {v:?}: {e}"))
}

fn config(cli: &Cli, algo: CcAlgorithm) -> SimConfig {
    let mut params = Params::paper_baseline();
    params.db_size = cli.db;
    params.mpl = cli.mpl;
    let mut metrics = MetricsConfig::paper();
    metrics.batches = cli.batches;
    SimConfig::new(algo)
        .with_params(params)
        .with_metrics(metrics)
        .with_seed(cli.seed)
        .with_workers(cli.workers)
}

fn measure(cli: &Cli, algo: CcAlgorithm) -> Result<Measurement, String> {
    // Every rep runs the identical configuration (same seeds, same event
    // sequence), so the spread across reps is pure wall-clock noise; the
    // median discards warm-up and scheduler hiccups.
    let mut runs: Vec<(Report, PerfStats)> = Vec::with_capacity(cli.reps as usize);
    for _ in 0..cli.reps {
        let (report, perf) =
            run_with_perf(config(cli, algo)).map_err(|e| format!("{}: {e}", algo.label()))?;
        runs.push((report, perf));
    }
    runs.sort_by(|a, b| {
        a.1.events_per_sec()
            .partial_cmp(&b.1.events_per_sec())
            .expect("events/sec is finite")
    });
    let (report, perf) = &runs[runs.len() / 2];
    let secs = perf.wall.as_secs_f64();
    Ok(Measurement {
        algo,
        events_per_sec: perf.events_per_sec(),
        commits_per_sec: if secs > 0.0 {
            report.commits as f64 / secs
        } else {
            0.0
        },
        events: perf.events,
        commits: report.commits,
        peak_calendar: perf.peak_calendar,
        peak_lock_table: perf.peak_lock_table,
        calendar: perf.calendar,
        elided_cpu_hops: perf.elided_cpu_hops,
        elided_disk_hops: perf.elided_disk_hops,
    })
}

/// Min / median / max of a set of repetition rates. The median is the
/// headline number; the endpoints quantify the wall-clock noise the
/// repetition scheme is fighting, so archives record all three.
#[derive(Clone, Copy)]
struct Spread {
    min: f64,
    median: f64,
    max: f64,
}

fn spread(mut rates: Vec<f64>) -> Spread {
    rates.sort_by(|a, b| a.partial_cmp(b).expect("rate is finite"));
    Spread {
        min: rates[0],
        median: rates[rates.len() / 2],
        max: *rates.last().expect("at least one rep"),
    }
}

/// The million-scale measurement: the elide-on point (floor source) plus
/// the elide-off ablation at the identical configuration.
struct ScaleMeasurement {
    events_per_sec: f64,
    commits_per_sec: f64,
    events: u64,
    commits: u64,
    peak_calendar: usize,
    peak_lock_table: usize,
    quantiles: StreamingQuantiles,
    /// `Some(reason)` when the run budget cut the window (the expected
    /// outcome at this scale), `None` when the horizon completed.
    stopped: Option<String>,
    /// Fast-path ablation pair, run at a scaled-down point (a fifth of the
    /// terminals and mpl, half the events): fast = two-tier calendar +
    /// uncontended-hop elision, stripped = heap-only + no elision. Both
    /// toggles preserve the event sequence byte for byte, so the two runs
    /// do identical work and the events/sec ratio is a pure
    /// data-structure speedup. The full million point is too
    /// memory-heavy to time the difference reliably on a noisy CI box —
    /// its wall clock is dominated by paging the ~600 MiB working set —
    /// while the derived point still packs hundreds of events per lane
    /// bucket and a six-figure calendar.
    ///
    /// The two arms are *interleaved* (fast, stripped, fast, stripped, …)
    /// rather than run as consecutive blocks, so slow machine drift —
    /// thermal throttling, a noisy CI neighbor arriving mid-benchmark —
    /// lands on both arms equally instead of biasing whichever block ran
    /// second; the speedup is the ratio of medians, with each arm's
    /// min/median/max archived so the residual noise is visible.
    ablation_terms: u32,
    ablation_mpl: u32,
    ablation_events: u64,
    fast: Spread,
    stripped: Spread,
    fastpath_speedup: f64,
    /// Process peak RSS after both runs (`VmHWM`; `None` off Linux).
    peak_rss_bytes: Option<u64>,
    /// Per-stage breakdown of the full point's median rep (profile builds
    /// only — `None` when the stage profiler is compiled out).
    stages: Option<StageProfile>,
    /// Wall time of the profiled median rep (denominator for coverage).
    profiled_wall: std::time::Duration,
}

fn scale_config(cli: &Cli, terms: u32, mpl: u32, max_events: u64, fast_paths: bool) -> SimConfig {
    let mut params = Params::exp_scale();
    params.db_size = cli.scale_db;
    params.num_terms = terms;
    params.mpl = mpl;
    // At mpl 10^5 a single simulated second is tens of millions of events,
    // so the event budget — not the batch horizon — ends the run. Short
    // batches with no warmup let the salvaged window still carry batch
    // counts and feed the streaming quantiles from the first commit.
    let mut metrics = MetricsConfig::quick();
    metrics.warmup_batches = 0;
    metrics.batches = 400;
    metrics.batch_time = SimDuration::from_millis(250);
    SimConfig::new(CcAlgorithm::Blocking)
        .with_params(params)
        .with_metrics(metrics)
        .with_seed(cli.seed)
        .with_budget(RunBudget::unlimited().with_max_events(max_events))
        .with_elision(fast_paths)
        .with_two_tier_calendar(fast_paths)
        .with_workers(cli.workers)
}

fn measure_scale(cli: &Cli) -> Result<ScaleMeasurement, String> {
    let run_point = |terms: u32, mpl: u32, events: u64, fast: bool| -> Result<RunOutcome, String> {
        let mut outs: Vec<RunOutcome> = Vec::with_capacity(cli.reps as usize);
        for _ in 0..cli.reps {
            outs.push(
                run_collecting(scale_config(cli, terms, mpl, events, fast))
                    .map_err(|e| format!("scale: {e}"))?,
            );
        }
        outs.sort_by(|a, b| {
            a.perf
                .events_per_sec()
                .partial_cmp(&b.perf.events_per_sec())
                .expect("events/sec is finite")
        });
        let mid = outs.len() / 2;
        Ok(outs.swap_remove(mid))
    };
    let full = run_point(cli.scale_terms, cli.scale_mpl, cli.scale_events, true)?;
    let ab_terms = (cli.scale_terms / 5).max(1);
    let ab_mpl = (cli.scale_mpl / 5).max(1).min(ab_terms);
    let ab_events = (cli.scale_events / 2).max(1);
    // Interleave the ablation arms rep by rep (fast, stripped, fast, …) so
    // machine drift during the benchmark hits both arms symmetrically.
    let mut fast_rates = Vec::with_capacity(cli.reps as usize);
    let mut stripped_rates = Vec::with_capacity(cli.reps as usize);
    for _ in 0..cli.reps {
        let fast = run_collecting(scale_config(cli, ab_terms, ab_mpl, ab_events, true))
            .map_err(|e| format!("scale ablation: {e}"))?;
        let stripped = run_collecting(scale_config(cli, ab_terms, ab_mpl, ab_events, false))
            .map_err(|e| format!("scale ablation: {e}"))?;
        debug_assert_eq!(fast.perf.events, stripped.perf.events);
        fast_rates.push(fast.perf.events_per_sec());
        stripped_rates.push(stripped.perf.events_per_sec());
    }
    let fast = spread(fast_rates);
    let stripped = spread(stripped_rates);
    let secs = full.perf.wall.as_secs_f64();
    Ok(ScaleMeasurement {
        events_per_sec: full.perf.events_per_sec(),
        commits_per_sec: if secs > 0.0 {
            full.report.commits as f64 / secs
        } else {
            0.0
        },
        events: full.perf.events,
        commits: full.report.commits,
        peak_calendar: full.perf.peak_calendar,
        peak_lock_table: full.perf.peak_lock_table,
        quantiles: full.quantiles,
        stopped: full.stopped.map(|e| e.to_string()),
        ablation_terms: ab_terms,
        ablation_mpl: ab_mpl,
        ablation_events: ab_events,
        fast,
        stripped,
        fastpath_speedup: if stripped.median > 0.0 {
            fast.median / stripped.median
        } else {
            0.0
        },
        peak_rss_bytes: peak_rss_bytes(),
        stages: full.stages,
        profiled_wall: full.perf.wall,
    })
}

/// Process high-water RSS from `/proc/self/status` (`VmHWM`), in bytes.
#[cfg(target_os = "linux")]
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: u64 = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_bytes() -> Option<u64> {
    None
}

/// Worker counts the sweep measures. The engine caps helper lanes at
/// `ccsim_core::MAX_LANES`, so 8 is the last interesting count.
const SWEEP_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// One worker count's measurement at the full scale point.
struct WorkerPoint {
    workers: u32,
    rate: Spread,
    windows: u64,
    planned: u64,
    speculated: u64,
    rolled_back: u64,
    replayed: u64,
    conflicts: u64,
    rollback_ratio: f64,
    /// Busy fraction per lane (lane 0 = the merge thread), one entry per
    /// configured lane.
    busy: Vec<f64>,
}

struct WorkerSweep {
    points: Vec<WorkerPoint>,
    /// Cores available to this process when the sweep ran — the context a
    /// reader (and the `--check` gate) needs to judge the speedups.
    host_cores: usize,
}

impl WorkerSweep {
    /// The sweep entry with the highest median events/sec.
    fn best(&self) -> &WorkerPoint {
        self.points
            .iter()
            .max_by(|a, b| {
                a.rate
                    .median
                    .partial_cmp(&b.rate.median)
                    .expect("rate is finite")
            })
            .expect("sweep is non-empty")
    }

    /// Speedup of a point over the sequential (workers = 1) entry.
    fn speedup(&self, p: &WorkerPoint) -> f64 {
        let seq = self.points[0].rate.median;
        if seq > 0.0 {
            p.rate.median / seq
        } else {
            0.0
        }
    }
}

/// Measure the full scale point at each sweep worker count, verifying as a
/// side effect that every count reproduced the sequential run exactly —
/// report, streaming quantiles, and event count. A divergence is a bug in
/// the window-parallel engine and fails the benchmark loudly rather than
/// archiving numbers for runs that did different work.
fn measure_worker_sweep(cli: &Cli) -> Result<WorkerSweep, String> {
    let mut points = Vec::with_capacity(SWEEP_COUNTS.len());
    let mut reference: Option<RunOutcome> = None;
    for &workers in &SWEEP_COUNTS {
        let mut outs: Vec<RunOutcome> = Vec::with_capacity(cli.reps as usize);
        for _ in 0..cli.reps {
            outs.push(
                run_collecting(
                    scale_config(cli, cli.scale_terms, cli.scale_mpl, cli.scale_events, true)
                        .with_workers(workers),
                )
                .map_err(|e| format!("worker sweep at {workers}: {e}"))?,
            );
        }
        let rate = spread(outs.iter().map(|o| o.perf.events_per_sec()).collect());
        outs.sort_by(|a, b| {
            a.perf
                .events_per_sec()
                .partial_cmp(&b.perf.events_per_sec())
                .expect("events/sec is finite")
        });
        let mid = outs.len() / 2;
        let out = outs.swap_remove(mid);
        match &reference {
            None => reference = Some(out),
            Some(seq) => {
                if seq.report != out.report
                    || seq.quantiles != out.quantiles
                    || seq.perf.events != out.perf.events
                {
                    return Err(format!(
                        "worker sweep: workers={workers} diverged from the sequential run \
                         (report/quantiles/events must be byte-identical)"
                    ));
                }
                reference = Some(out);
            }
        }
        let par = reference.as_ref().and_then(|o| o.perf.parallel.as_ref());
        let lanes = (workers as usize).min(ccsim_core::MAX_LANES);
        points.push(WorkerPoint {
            workers,
            rate,
            windows: par.map_or(0, |p| p.windows),
            planned: par.map_or(0, |p| p.planned),
            speculated: par.map_or(0, |p| p.speculated),
            rolled_back: par.map_or(0, |p| p.rolled_back),
            replayed: par.map_or(0, |p| p.replayed),
            conflicts: par.map_or(0, |p| p.conflicts),
            rollback_ratio: par.map_or(0.0, ccsim_core::ParallelStats::rollback_ratio),
            busy: par.map_or_else(Vec::new, |p| {
                (0..lanes).map(|lane| p.busy_fraction(lane)).collect()
            }),
        });
    }
    Ok(WorkerSweep {
        points,
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    })
}

/// Extract the baseline archive's scale events/sec (for the speedup floor
/// embedded in the `"workers"` block). `Ok(None)` when the baseline has no
/// scale block.
fn baseline_scale_eps(path: &PathBuf) -> Result<Option<f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(doc
        .get("scale")
        .and_then(|s| s.get("events_per_sec"))
        .and_then(json::Value::as_f64))
}

/// Cores required before `--check` enforces the parallel floor / speedup
/// floor: a host below the threshold cannot express the speedup, so the
/// gate reports itself as gated instead of failing.
const FLOOR_MIN_CORES: usize = 2;
const SPEEDUP_MIN_CORES: usize = 4;

/// Required best-count speedup over the baseline archive's scale
/// events/sec (enforced on hosts with `SPEEDUP_MIN_CORES`+ cores).
const REQUIRED_SPEEDUP: f64 = 1.5;

/// Serialize the worker sweep for `--out`.
fn workers_json(cli: &Cli, s: &WorkerSweep, baseline_eps: Option<f64>) -> String {
    let mut out = String::with_capacity(768);
    let _ = write!(
        out,
        "\"workers\":{{\"host_cores\":{},\"sweep\":[",
        s.host_cores
    );
    for (i, p) in s.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"workers\":{},\"events_per_sec\":{:.0},\"min\":{:.0},\"max\":{:.0},\
             \"speedup\":{:.3},\"windows\":{},\"planned\":{},\"speculated\":{},\
             \"rolled_back\":{},\"replayed\":{},\"conflicts\":{},\"rollback_ratio\":{:.4},\
             \"busy\":[",
            p.workers,
            p.rate.median,
            p.rate.min,
            p.rate.max,
            s.speedup(p),
            p.windows,
            p.planned,
            p.speculated,
            p.rolled_back,
            p.replayed,
            p.conflicts,
            p.rollback_ratio,
        );
        for (j, b) in p.busy.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b:.3}");
        }
        out.push_str("]}");
    }
    let best = s.best();
    let _ = write!(
        out,
        "],\"best_workers\":{},\"best_events_per_sec\":{:.0},\"best_speedup\":{:.3},\
         \"parallel_floor_events_per_sec\":{:.0},\"floor_min_cores\":{FLOOR_MIN_CORES},\
         \"required_speedup\":{REQUIRED_SPEEDUP},\"speedup_min_cores\":{SPEEDUP_MIN_CORES}",
        best.workers,
        best.rate.median,
        s.speedup(best),
        best.rate.median * cli.floor_frac,
    );
    match baseline_eps {
        Some(eps) => {
            let _ = write!(
                out,
                ",\"baseline_events_per_sec\":{eps:.0},\
                 \"speedup_floor_events_per_sec\":{:.0}",
                eps * REQUIRED_SPEEDUP
            );
        }
        None => {
            out.push_str(",\"baseline_events_per_sec\":null,\"speedup_floor_events_per_sec\":null")
        }
    }
    out.push('}');
    out
}

/// Compare a fresh worker sweep against the `"workers"` block archived in
/// `path`. Parity across counts was already verified while measuring; the
/// gates here are the archived floors, applied only on hosts with enough
/// cores to express them.
fn check_workers(path: &PathBuf, s: &WorkerSweep) -> Result<Vec<CheckLine>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let Some(block) = doc.get("workers") else {
        return Ok(vec![CheckLine::fail(format!(
            "workers: {} has no archived workers block (re-archive with --worker-sweep --out)",
            path.display()
        ))]);
    };
    let mut lines = vec![CheckLine::pass(format!(
        "worker sweep parity: report/quantiles/events byte-identical at counts {SWEEP_COUNTS:?}"
    ))];
    let best = s.best();
    let floor = block
        .get("parallel_floor_events_per_sec")
        .and_then(json::Value::as_f64)
        .ok_or_else(|| format!("{}: bad parallel floor", path.display()))?;
    if s.host_cores >= FLOOR_MIN_CORES {
        lines.push(CheckLine::bound(
            "workers best",
            best.rate.median,
            "floor",
            floor,
            "events/sec",
            best.rate.median >= floor,
        ));
    } else {
        lines.push(CheckLine::pass(format!(
            "workers floor gated: host has {} core(s), gate needs >= {FLOOR_MIN_CORES} \
             (best measured {:.0} events/sec at {} workers; archived floor {floor:.0})",
            s.host_cores, best.rate.median, best.workers
        )));
    }
    // The speedup gate is a *ratio* — best-count events/sec over the fresh
    // sequential (workers = 1) rate from the same sweep on the same host —
    // so a CI runner slower than the archive machine still passes at a
    // genuine 1.5x, and a fast one can't coast on raw clock speed. The
    // archived absolute `speedup_floor_events_per_sec` is informational.
    let required = block
        .get("required_speedup")
        .and_then(json::Value::as_f64)
        .unwrap_or(REQUIRED_SPEEDUP);
    if s.host_cores >= SPEEDUP_MIN_CORES {
        let measured = s.speedup(best);
        lines.push(CheckLine {
            ok: measured >= required,
            text: format!(
                "workers speedup: measured {measured:.2}x at {} workers {} archived \
                 floor {required:.2}x over the sequential run",
                best.workers,
                if measured >= required {
                    "meets"
                } else {
                    "violates"
                },
            ),
        });
    } else {
        lines.push(CheckLine::pass(format!(
            "workers speedup gated: host has {} core(s), gate needs >= {SPEEDUP_MIN_CORES} \
             (best measured {:.2}x at {} workers; required {required:.2}x)",
            s.host_cores,
            s.speedup(best),
            best.workers
        )));
    }
    Ok(lines)
}

/// Build the `"baseline"` comparison block for `--out` from a previous
/// benchmark archive: per algorithm, the archived events/sec, this run's
/// events/sec, and the speedup ratio.
fn baseline_block(path: &PathBuf, results: &[Measurement]) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let algos = doc
        .get("algorithms")
        .and_then(json::Value::as_arr)
        .ok_or_else(|| format!("{}: missing \"algorithms\" array", path.display()))?;
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "\"baseline\":{{\"path\":\"{}\",\"metric\":\"events_per_sec, median of reps\",\
         \"algorithms\":[",
        path.display()
    );
    for (i, m) in results.iter().enumerate() {
        let base = algos
            .iter()
            .find(|v| v.get("algo").and_then(json::Value::as_str) == Some(m.algo.label()))
            .and_then(|v| v.get("events_per_sec"))
            .and_then(json::Value::as_f64)
            .ok_or_else(|| {
                format!(
                    "{}: no events_per_sec for {}",
                    path.display(),
                    m.algo.label()
                )
            })?;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"algo\":\"{}\",\"baseline_events_per_sec\":{base:.0},\
             \"new_events_per_sec\":{:.0},\"speedup\":{:.2}}}",
            m.algo.label(),
            m.events_per_sec,
            m.events_per_sec / base,
        );
    }
    out.push_str("]}");
    Ok(out)
}

/// Serialize a per-stage breakdown as a JSON block (comma-prefixed, ready
/// to append inside the scale object).
fn stages_json(p: &StageProfile, wall: std::time::Duration) -> String {
    let mut out = String::with_capacity(512);
    out.push_str(",\"stages\":[");
    for (i, st) in p.stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cycles\":{},\"enters\":{},\"frac\":{:.4},\"secs\":{:.3}}}",
            st.name,
            st.cycles,
            st.enters,
            st.frac,
            p.stage_secs(i)
        );
    }
    let _ = write!(
        out,
        "],\"profiled_wall_secs\":{:.3},\"profile_coverage\":{:.3}",
        p.wall.as_secs_f64(),
        p.covered_frac(wall)
    );
    out
}

/// Extract the archived `"stages"` block (plus its coverage fields) from a
/// profile-build archive, re-emitting it for embedding into a new archive.
/// Lets the floors come from an uninstrumented build while the breakdown
/// comes from the instrumented companion run.
fn stages_block_from(path: &PathBuf) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let scale = doc
        .get("scale")
        .ok_or_else(|| format!("{}: no \"scale\" block", path.display()))?;
    let arr = scale
        .get("stages")
        .and_then(json::Value::as_arr)
        .ok_or_else(|| {
            format!(
                "{}: no \"stages\" in the scale block (re-archive with a \
                 --features profile build and --profile)",
                path.display()
            )
        })?;
    let mut out = String::with_capacity(512);
    out.push_str(",\"stages\":[");
    for (i, st) in arr.iter().enumerate() {
        let field = |key: &str| {
            st.get(key)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("{}: stage missing {key}", path.display()))
        };
        let name = st
            .get("name")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("{}: stage missing name", path.display()))?;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cycles\":{:.0},\"enters\":{:.0},\"frac\":{:.4},\"secs\":{:.3}}}",
            name,
            field("cycles")?,
            field("enters")?,
            field("frac")?,
            field("secs")?
        );
    }
    out.push(']');
    for key in ["profiled_wall_secs", "profile_coverage"] {
        if let Some(v) = scale.get(key).and_then(json::Value::as_f64) {
            let _ = write!(out, ",\"{key}\":{v:.3}");
        }
    }
    Ok(out)
}

/// Serialize the scale block for `--out`. Floors follow the small-regime
/// convention (`floor-frac` x measured, raised to at least
/// `--scale-floor-min`); the RSS ceiling goes the other way (`rss-slack` x
/// measured) because memory regressions grow upward.
fn scale_json(cli: &Cli, s: &ScaleMeasurement, extra_stages: Option<&str>) -> String {
    let mut out = String::with_capacity(768);
    let _ = write!(
        out,
        "\"scale\":{{\"point\":{{\"experiment\":\"exp-scale\",\"algo\":\"blocking\",\
         \"db_size\":{},\"num_terms\":{},\"mpl\":{},\"resources\":\"infinite\",\
         \"max_events\":{},\"seed\":{}}},",
        cli.scale_db, cli.scale_terms, cli.scale_mpl, cli.scale_events, cli.seed
    );
    let _ = write!(
        out,
        "\"events_per_sec\":{:.0},\"floor_events_per_sec\":{:.0},\"commits_per_sec\":{:.1},\
         \"events\":{},\"commits\":{},\"peak_calendar\":{},\"peak_lock_table\":{},",
        s.events_per_sec,
        (s.events_per_sec * cli.floor_frac).max(cli.scale_floor_min),
        s.commits_per_sec,
        s.events,
        s.commits,
        s.peak_calendar,
        s.peak_lock_table,
    );
    let _ = write!(
        out,
        "\"stopped\":{},",
        match &s.stopped {
            Some(reason) => format!("\"{reason}\""),
            None => "null".to_string(),
        }
    );
    let q = &s.quantiles;
    let _ = write!(
        out,
        "\"response_quantiles\":{{\"p50\":{:.6},\"p95\":{:.6},\"p99\":{:.6},\"count\":{}}},",
        q.p50, q.p95, q.p99, q.count
    );
    let _ = write!(
        out,
        "\"ablation\":{{\"num_terms\":{},\"mpl\":{},\"max_events\":{},\
         \"interleaved_reps\":{},\
         \"fast_events_per_sec\":{:.0},\"fast_min\":{:.0},\"fast_max\":{:.0},\
         \"baseline_events_per_sec\":{:.0},\"stripped_min\":{:.0},\"stripped_max\":{:.0},\
         \"fastpath_speedup\":{:.3}}}",
        s.ablation_terms,
        s.ablation_mpl,
        s.ablation_events,
        cli.reps,
        s.fast.median,
        s.fast.min,
        s.fast.max,
        s.stripped.median,
        s.stripped.min,
        s.stripped.max,
        s.fastpath_speedup
    );
    match s.peak_rss_bytes {
        Some(rss) => {
            let ceiling = (rss as f64 * cli.rss_slack) as u64;
            let _ = write!(
                out,
                ",\"peak_rss_bytes\":{rss},\"rss_ceiling_bytes\":{ceiling}"
            );
        }
        None => out.push_str(",\"peak_rss_bytes\":null,\"rss_ceiling_bytes\":null"),
    }
    if let Some(p) = &s.stages {
        out.push_str(&stages_json(p, s.profiled_wall));
    } else if let Some(block) = extra_stages {
        out.push_str(block);
    }
    out.push('}');
    out
}

fn to_json(
    cli: &Cli,
    results: &[Measurement],
    baseline: Option<&str>,
    scale: Option<&str>,
    workers: Option<&str>,
) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"bench\":\"throughput\",\"reference_point\":");
    out.push_str("{\"experiment\":\"exp1-low-conflict\",");
    let _ = write!(
        out,
        "\"db_size\":{},\"mpl\":{},\"resources\":\"1cpu-2disk\",\"batches\":{},\"seed\":{}}},",
        cli.db, cli.mpl, cli.batches, cli.seed
    );
    let _ = write!(out, "\"reps\":{},", cli.reps);
    out.push_str("\"algorithms\":[");
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"algo\":\"{}\",\"events_per_sec\":{:.0},\"commits_per_sec\":{:.1},\
             \"events\":{},\"commits\":{},\"peak_calendar\":{},\"peak_lock_table\":{},\
             \"floor_events_per_sec\":{:.0},",
            m.algo.label(),
            m.events_per_sec,
            m.commits_per_sec,
            m.events,
            m.commits,
            m.peak_calendar,
            m.peak_lock_table,
            m.events_per_sec * cli.floor_frac,
        );
        let cs = &m.calendar;
        let _ = write!(
            out,
            "\"calendar\":{{\"schedules\":{},\"pops\":{},\"cancels\":{},\
             \"lane_schedules\":{},\"heap_schedules\":{},\"lane_pops\":{},\"heap_pops\":{}}},\
             \"elided_cpu_hops\":{},\"elided_disk_hops\":{}}}",
            cs.schedules,
            cs.pops,
            cs.cancels,
            cs.lane_schedules,
            cs.heap_schedules,
            cs.lane_pops,
            cs.heap_pops,
            m.elided_cpu_hops,
            m.elided_disk_hops,
        );
    }
    out.push(']');
    if let Some(block) = scale {
        out.push(',');
        out.push_str(block);
    }
    if let Some(block) = workers {
        out.push(',');
        out.push_str(block);
    }
    if let Some(block) = baseline {
        out.push(',');
        out.push_str(block);
    }
    out.push_str("}\n");
    out
}

/// One metric's verdict against its archived bound. Every compared metric
/// produces a line — passes included — so a CI log shows the measured
/// value next to the archived bound whether or not the gate trips, and a
/// failure is diagnosable (how far below the floor? which metric?) from
/// the log alone.
struct CheckLine {
    ok: bool,
    text: String,
}

impl CheckLine {
    fn pass(text: String) -> Self {
        CheckLine { ok: true, text }
    }
    fn fail(text: String) -> Self {
        CheckLine { ok: false, text }
    }
    fn bound(label: &str, measured: f64, relation: &str, bound: f64, unit: &str, ok: bool) -> Self {
        CheckLine {
            ok,
            text: format!(
                "{label}: measured {measured:.0} {unit} {verdict} archived {relation} \
                 {bound:.0} {unit}",
                verdict = if ok { "meets" } else { "violates" },
            ),
        }
    }
}

/// Compare fresh measurements against the floors archived in `path`.
/// Returns one line per algorithm (pass or fail).
fn check_floors(path: &PathBuf, results: &[Measurement]) -> Result<Vec<CheckLine>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let algos = doc
        .get("algorithms")
        .and_then(json::Value::as_arr)
        .ok_or_else(|| format!("{}: missing \"algorithms\" array", path.display()))?;
    let mut lines = Vec::new();
    for m in results {
        let archived = algos
            .iter()
            .find(|v| v.get("algo").and_then(json::Value::as_str) == Some(m.algo.label()));
        let Some(archived) = archived else {
            lines.push(CheckLine::fail(format!(
                "{}: no archived floor",
                m.algo.label()
            )));
            continue;
        };
        let floor = archived
            .get("floor_events_per_sec")
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{}: bad floor for {}", path.display(), m.algo.label()))?;
        lines.push(CheckLine::bound(
            m.algo.label(),
            m.events_per_sec,
            "floor",
            floor,
            "events/sec",
            m.events_per_sec >= floor,
        ));
    }
    Ok(lines)
}

/// Compare a fresh scale measurement against the `"scale"` block archived
/// in `path`: the events/sec floor, the RSS ceiling, and the elision win.
fn check_scale(path: &PathBuf, s: &ScaleMeasurement) -> Result<Vec<CheckLine>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let Some(block) = doc.get("scale") else {
        return Ok(vec![CheckLine::fail(format!(
            "scale: {} has no archived scale block (re-archive with --scale --out)",
            path.display()
        ))]);
    };
    let mut lines = Vec::new();
    let floor = block
        .get("floor_events_per_sec")
        .and_then(json::Value::as_f64)
        .ok_or_else(|| format!("{}: bad scale floor", path.display()))?;
    lines.push(CheckLine::bound(
        "scale/blocking",
        s.events_per_sec,
        "floor",
        floor,
        "events/sec",
        s.events_per_sec >= floor,
    ));
    let win = s.fastpath_speedup > 1.0;
    let spread_note = format!(
        "two-tier+elision {:.0} [{:.0}..{:.0}] vs stripped {:.0} [{:.0}..{:.0}] events/sec \
         at terms {}, mpl {}",
        s.fast.median,
        s.fast.min,
        s.fast.max,
        s.stripped.median,
        s.stripped.min,
        s.stripped.max,
        s.ablation_terms,
        s.ablation_mpl
    );
    lines.push(if win {
        CheckLine::pass(format!(
            "scale ablation: fast-path speedup {:.3}x is a win ({spread_note})",
            s.fastpath_speedup
        ))
    } else {
        CheckLine::fail(format!(
            "scale ablation: fast-path speedup {:.3}x is not a win ({spread_note})",
            s.fastpath_speedup
        ))
    });
    // The ceiling only binds where VmHWM is measurable (Linux) and was
    // archived from a Linux machine in the first place.
    if let (Some(rss), Some(ceiling)) = (
        s.peak_rss_bytes,
        block.get("rss_ceiling_bytes").and_then(json::Value::as_f64),
    ) {
        lines.push(CheckLine::bound(
            "scale RSS",
            rss as f64 / (1024.0 * 1024.0),
            "ceiling",
            ceiling / (1024.0 * 1024.0),
            "MiB",
            rss as f64 <= ceiling,
        ));
    }
    Ok(lines)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut results = Vec::new();
    for algo in CcAlgorithm::PAPER_TRIO {
        match measure(&cli, algo) {
            Ok(m) => {
                println!(
                    "{:<18} {:>12.0} events/sec  {:>9.1} commits/sec  \
                     (median of {}; {} events, peak cal {}, peak locks {})",
                    m.algo.label(),
                    m.events_per_sec,
                    m.commits_per_sec,
                    cli.reps,
                    m.events,
                    m.peak_calendar,
                    m.peak_lock_table,
                );
                if cli.perf {
                    let cs = &m.calendar;
                    println!(
                        "{:<18} calendar: {} schedules ({} lane / {} heap), \
                         {} pops ({} lane / {} heap), {} cancels; \
                         elided hops: {} cpu, {} disk",
                        "",
                        cs.schedules,
                        cs.lane_schedules,
                        cs.heap_schedules,
                        cs.pops,
                        cs.lane_pops,
                        cs.heap_pops,
                        cs.cancels,
                        m.elided_cpu_hops,
                        m.elided_disk_hops,
                    );
                }
                if cli.profile {
                    // One extra instrumented run per algorithm; the timed
                    // reps above stay untouched so their rates remain
                    // comparable across flag combinations.
                    match run_collecting(config(&cli, m.algo)) {
                        Ok(out) => match out.stages {
                            Some(p) => print!("{}", p.render(out.perf.wall)),
                            None => eprintln!("warning: profiled run produced no stage report"),
                        },
                        Err(e) => {
                            eprintln!("error: {}: {e}", m.algo.label());
                            return ExitCode::from(2);
                        }
                    }
                }
                results.push(m);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let scale = if cli.scale {
        match measure_scale(&cli) {
            Ok(s) => {
                println!(
                    "{:<18} {:>12.0} events/sec  (db {}, terms {}, mpl {}, {} events; \
                     peak cal {}, peak locks {}, {})",
                    "scale/blocking",
                    s.events_per_sec,
                    cli.scale_db,
                    cli.scale_terms,
                    cli.scale_mpl,
                    s.events,
                    s.peak_calendar,
                    s.peak_lock_table,
                    s.stopped.as_deref().unwrap_or("horizon completed"),
                );
                println!(
                    "{:<18} response quantiles (streaming): p50 {:.1}ms  p95 {:.1}ms  \
                     p99 {:.1}ms  over {} commits",
                    "",
                    s.quantiles.p50 * 1e3,
                    s.quantiles.p95 * 1e3,
                    s.quantiles.p99 * 1e3,
                    s.quantiles.count,
                );
                println!(
                    "{:<18} fast-path ablation (terms {}, mpl {}, {} events, {} interleaved \
                     reps): {:.0} [{:.0}..{:.0}] vs {:.0} [{:.0}..{:.0}] events/sec \
                     (two-tier+elision over stripped, medians, {:.2}x); peak RSS {}",
                    "",
                    s.ablation_terms,
                    s.ablation_mpl,
                    s.ablation_events,
                    cli.reps,
                    s.fast.median,
                    s.fast.min,
                    s.fast.max,
                    s.stripped.median,
                    s.stripped.min,
                    s.stripped.max,
                    s.fastpath_speedup,
                    match s.peak_rss_bytes {
                        Some(b) => format!("{:.0} MiB", b as f64 / (1024.0 * 1024.0)),
                        None => "unavailable".to_string(),
                    },
                );
                if cli.profile {
                    match &s.stages {
                        Some(p) => print!("{}", p.render(s.profiled_wall)),
                        None => eprintln!("warning: profiled run produced no stage report"),
                    }
                }
                Some(s)
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };
    let sweep = if cli.worker_sweep {
        match measure_worker_sweep(&cli) {
            Ok(s) => {
                for p in &s.points {
                    let busy = p
                        .busy
                        .iter()
                        .map(|b| format!("{:.0}%", b * 100.0))
                        .collect::<Vec<_>>()
                        .join(" ");
                    println!(
                        "{:<18} {:>12.0} events/sec  ({:.2}x vs 1 worker; {} windows, \
                         {}/{} speculated/applied, {} replayed, rollback {:.2}%, busy [{busy}])",
                        format!("workers/{}", p.workers),
                        p.rate.median,
                        s.speedup(p),
                        p.windows,
                        p.speculated,
                        p.speculated - p.rolled_back,
                        p.replayed,
                        p.rollback_ratio * 100.0,
                    );
                }
                let best = s.best();
                println!(
                    "{:<18} best {} worker(s) at {:.0} events/sec ({:.2}x); \
                     host has {} core(s); parity verified at every count",
                    "workers/best",
                    best.workers,
                    best.rate.median,
                    s.speedup(best),
                    s.host_cores,
                );
                Some(s)
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };
    if let Some(path) = &cli.out {
        let baseline = match &cli.baseline {
            Some(base) => match baseline_block(base, &results) {
                Ok(block) => Some(block),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            None => None,
        };
        let extra_stages = match &cli.stages_from {
            Some(src) => match stages_block_from(src) {
                Ok(block) => Some(block),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            None => None,
        };
        let scale_block = scale
            .as_ref()
            .map(|s| scale_json(&cli, s, extra_stages.as_deref()));
        let workers_block = match &sweep {
            Some(s) => {
                let eps = match &cli.baseline {
                    Some(base) => match baseline_scale_eps(base) {
                        Ok(e) => e,
                        Err(e) => {
                            eprintln!("error: {e}");
                            return ExitCode::from(2);
                        }
                    },
                    None => None,
                };
                Some(workers_json(&cli, s, eps))
            }
            None => None,
        };
        let text = to_json(
            &cli,
            &results,
            baseline.as_deref(),
            scale_block.as_deref(),
            workers_block.as_deref(),
        );
        if let Err(e) = write_atomic(path, text.as_bytes()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = &cli.check {
        let mut lines = match check_floors(path, &results) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        if let Some(s) = &scale {
            match check_scale(path, s) {
                Ok(f) => lines.extend(f),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        if let Some(s) = &sweep {
            match check_workers(path, s) {
                Ok(f) => lines.extend(f),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        let mut failed = false;
        for l in &lines {
            if l.ok {
                println!("  ok  {}", l.text);
            } else {
                failed = true;
                eprintln!("FAIL  {}", l.text);
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
        println!("perf floors OK ({})", path.display());
    }
    ExitCode::SUCCESS
}
