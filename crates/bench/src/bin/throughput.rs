//! `throughput` — wall-clock engine throughput on the tracked reference
//! point (experiment 1's low-conflict setting, 10 000-page database,
//! mpl 50, 1 CPU / 2 disks).
//!
//! For each of the paper's three algorithms the binary runs `--reps`
//! independent repetitions of the same deterministic configuration,
//! takes the median events/sec, and reports:
//!
//! - `events_per_sec` — calendar events handled per wall-clock second,
//! - `commits_per_sec` — committed transactions per wall-clock second,
//! - peak calendar / lock-table occupancy (exact high-water marks).
//!
//! ```text
//! throughput [--reps 3] [--batches 600] [--mpl 50] [--db 10000]
//!            [--seed <u64>] [--floor-frac 0.30] [--perf]
//!            [--out BENCH_5.json] [--check BENCH_5.json]
//!            [--baseline BENCH_4.json]
//! ```
//!
//! `--out` archives the measurements as JSON, including a conservative
//! `floor_events_per_sec` per algorithm (`floor-frac` x the measured
//! median — low enough to absorb CI-machine noise, high enough to catch
//! an order-of-magnitude regression). `--check <path>` re-measures and
//! exits nonzero if any algorithm falls below the archived floor; CI's
//! perf-smoke job runs exactly that. `--perf` adds per-algorithm
//! calendar-op counters (schedules/pops/cancels, the near-lane vs
//! overflow-heap split, and elided resource hops) to the report; the
//! counters are always embedded in `--out` JSON. `--baseline <path>`
//! embeds a comparison block into `--out`: this run's events/sec over
//! the events/sec archived in a previous benchmark file.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use ccsim_core::{run_with_perf, CcAlgorithm, MetricsConfig, Params, PerfStats, Report, SimConfig};
use ccsim_des::CalendarStats;
use ccsim_experiments::json;
use ccsim_experiments::write_atomic;

struct Cli {
    reps: u32,
    batches: u32,
    mpl: u32,
    db: u64,
    seed: u64,
    floor_frac: f64,
    perf: bool,
    out: Option<PathBuf>,
    check: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

/// One algorithm's median-of-reps measurement.
struct Measurement {
    algo: CcAlgorithm,
    events_per_sec: f64,
    commits_per_sec: f64,
    events: u64,
    commits: u64,
    peak_calendar: usize,
    peak_lock_table: usize,
    /// Calendar-op counters from the median rep (identical across reps:
    /// every rep replays the same deterministic event sequence).
    calendar: CalendarStats,
    elided_cpu_hops: u64,
    elided_disk_hops: u64,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        reps: 3,
        batches: 600,
        mpl: 50,
        db: 10_000,
        seed: 0xCC85,
        floor_frac: 0.30,
        perf: false,
        out: None,
        check: None,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    let next_val = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => cli.reps = parse_num(&next_val(&mut args, "--reps")?)?,
            "--batches" => cli.batches = parse_num(&next_val(&mut args, "--batches")?)?,
            "--mpl" => cli.mpl = parse_num(&next_val(&mut args, "--mpl")?)?,
            "--db" => cli.db = parse_num(&next_val(&mut args, "--db")?)?,
            "--seed" => cli.seed = parse_num(&next_val(&mut args, "--seed")?)?,
            "--floor-frac" => {
                cli.floor_frac = parse_num(&next_val(&mut args, "--floor-frac")?)?;
            }
            "--perf" => cli.perf = true,
            "--out" => cli.out = Some(PathBuf::from(next_val(&mut args, "--out")?)),
            "--check" => cli.check = Some(PathBuf::from(next_val(&mut args, "--check")?)),
            "--baseline" => {
                cli.baseline = Some(PathBuf::from(next_val(&mut args, "--baseline")?));
            }
            other => return Err(format!("unknown flag {other} (see --help in the source)")),
        }
    }
    if cli.reps == 0 {
        return Err("--reps must be at least 1".to_string());
    }
    if !(0.0..1.0).contains(&cli.floor_frac) {
        return Err("--floor-frac must be in [0, 1)".to_string());
    }
    if cli.baseline.is_some() && cli.out.is_none() {
        return Err("--baseline requires --out (it is embedded in the archive)".to_string());
    }
    Ok(cli)
}

fn parse_num<T: std::str::FromStr>(v: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    v.parse().map_err(|e| format!("bad value {v:?}: {e}"))
}

fn config(cli: &Cli, algo: CcAlgorithm) -> SimConfig {
    let mut params = Params::paper_baseline();
    params.db_size = cli.db;
    params.mpl = cli.mpl;
    let mut metrics = MetricsConfig::paper();
    metrics.batches = cli.batches;
    SimConfig::new(algo)
        .with_params(params)
        .with_metrics(metrics)
        .with_seed(cli.seed)
}

fn measure(cli: &Cli, algo: CcAlgorithm) -> Result<Measurement, String> {
    // Every rep runs the identical configuration (same seeds, same event
    // sequence), so the spread across reps is pure wall-clock noise; the
    // median discards warm-up and scheduler hiccups.
    let mut runs: Vec<(Report, PerfStats)> = Vec::with_capacity(cli.reps as usize);
    for _ in 0..cli.reps {
        let (report, perf) =
            run_with_perf(config(cli, algo)).map_err(|e| format!("{}: {e}", algo.label()))?;
        runs.push((report, perf));
    }
    runs.sort_by(|a, b| {
        a.1.events_per_sec()
            .partial_cmp(&b.1.events_per_sec())
            .expect("events/sec is finite")
    });
    let (report, perf) = &runs[runs.len() / 2];
    let secs = perf.wall.as_secs_f64();
    Ok(Measurement {
        algo,
        events_per_sec: perf.events_per_sec(),
        commits_per_sec: if secs > 0.0 {
            report.commits as f64 / secs
        } else {
            0.0
        },
        events: perf.events,
        commits: report.commits,
        peak_calendar: perf.peak_calendar,
        peak_lock_table: perf.peak_lock_table,
        calendar: perf.calendar,
        elided_cpu_hops: perf.elided_cpu_hops,
        elided_disk_hops: perf.elided_disk_hops,
    })
}

/// Build the `"baseline"` comparison block for `--out` from a previous
/// benchmark archive: per algorithm, the archived events/sec, this run's
/// events/sec, and the speedup ratio.
fn baseline_block(path: &PathBuf, results: &[Measurement]) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let algos = doc
        .get("algorithms")
        .and_then(json::Value::as_arr)
        .ok_or_else(|| format!("{}: missing \"algorithms\" array", path.display()))?;
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "\"baseline\":{{\"path\":\"{}\",\"metric\":\"events_per_sec, median of reps\",\
         \"algorithms\":[",
        path.display()
    );
    for (i, m) in results.iter().enumerate() {
        let base = algos
            .iter()
            .find(|v| v.get("algo").and_then(json::Value::as_str) == Some(m.algo.label()))
            .and_then(|v| v.get("events_per_sec"))
            .and_then(json::Value::as_f64)
            .ok_or_else(|| {
                format!(
                    "{}: no events_per_sec for {}",
                    path.display(),
                    m.algo.label()
                )
            })?;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"algo\":\"{}\",\"baseline_events_per_sec\":{base:.0},\
             \"new_events_per_sec\":{:.0},\"speedup\":{:.2}}}",
            m.algo.label(),
            m.events_per_sec,
            m.events_per_sec / base,
        );
    }
    out.push_str("]}");
    Ok(out)
}

fn to_json(cli: &Cli, results: &[Measurement], baseline: Option<&str>) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"bench\":\"throughput\",\"reference_point\":");
    out.push_str("{\"experiment\":\"exp1-low-conflict\",");
    let _ = write!(
        out,
        "\"db_size\":{},\"mpl\":{},\"resources\":\"1cpu-2disk\",\"batches\":{},\"seed\":{}}},",
        cli.db, cli.mpl, cli.batches, cli.seed
    );
    let _ = write!(out, "\"reps\":{},", cli.reps);
    out.push_str("\"algorithms\":[");
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"algo\":\"{}\",\"events_per_sec\":{:.0},\"commits_per_sec\":{:.1},\
             \"events\":{},\"commits\":{},\"peak_calendar\":{},\"peak_lock_table\":{},\
             \"floor_events_per_sec\":{:.0},",
            m.algo.label(),
            m.events_per_sec,
            m.commits_per_sec,
            m.events,
            m.commits,
            m.peak_calendar,
            m.peak_lock_table,
            m.events_per_sec * cli.floor_frac,
        );
        let cs = &m.calendar;
        let _ = write!(
            out,
            "\"calendar\":{{\"schedules\":{},\"pops\":{},\"cancels\":{},\
             \"lane_schedules\":{},\"heap_schedules\":{},\"lane_pops\":{},\"heap_pops\":{}}},\
             \"elided_cpu_hops\":{},\"elided_disk_hops\":{}}}",
            cs.schedules,
            cs.pops,
            cs.cancels,
            cs.lane_schedules,
            cs.heap_schedules,
            cs.lane_pops,
            cs.heap_pops,
            m.elided_cpu_hops,
            m.elided_disk_hops,
        );
    }
    out.push(']');
    if let Some(block) = baseline {
        out.push(',');
        out.push_str(block);
    }
    out.push_str("}\n");
    out
}

/// Compare fresh measurements against the floors archived in `path`.
/// Returns the list of failures (empty = all algorithms at or above floor).
fn check_floors(path: &PathBuf, results: &[Measurement]) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let algos = doc
        .get("algorithms")
        .and_then(json::Value::as_arr)
        .ok_or_else(|| format!("{}: missing \"algorithms\" array", path.display()))?;
    let mut failures = Vec::new();
    for m in results {
        let archived = algos
            .iter()
            .find(|v| v.get("algo").and_then(json::Value::as_str) == Some(m.algo.label()));
        let Some(archived) = archived else {
            failures.push(format!("{}: no archived floor", m.algo.label()));
            continue;
        };
        let floor = archived
            .get("floor_events_per_sec")
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{}: bad floor for {}", path.display(), m.algo.label()))?;
        if m.events_per_sec < floor {
            failures.push(format!(
                "{}: {:.0} events/sec is below the archived floor {:.0}",
                m.algo.label(),
                m.events_per_sec,
                floor
            ));
        }
    }
    Ok(failures)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut results = Vec::new();
    for algo in CcAlgorithm::PAPER_TRIO {
        match measure(&cli, algo) {
            Ok(m) => {
                println!(
                    "{:<18} {:>12.0} events/sec  {:>9.1} commits/sec  \
                     (median of {}; {} events, peak cal {}, peak locks {})",
                    m.algo.label(),
                    m.events_per_sec,
                    m.commits_per_sec,
                    cli.reps,
                    m.events,
                    m.peak_calendar,
                    m.peak_lock_table,
                );
                if cli.perf {
                    let cs = &m.calendar;
                    println!(
                        "{:<18} calendar: {} schedules ({} lane / {} heap), \
                         {} pops ({} lane / {} heap), {} cancels; \
                         elided hops: {} cpu, {} disk",
                        "",
                        cs.schedules,
                        cs.lane_schedules,
                        cs.heap_schedules,
                        cs.pops,
                        cs.lane_pops,
                        cs.heap_pops,
                        cs.cancels,
                        m.elided_cpu_hops,
                        m.elided_disk_hops,
                    );
                }
                results.push(m);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = &cli.out {
        let baseline = match &cli.baseline {
            Some(base) => match baseline_block(base, &results) {
                Ok(block) => Some(block),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            None => None,
        };
        let text = to_json(&cli, &results, baseline.as_deref());
        if let Err(e) = write_atomic(path, text.as_bytes()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = &cli.check {
        match check_floors(path, &results) {
            Ok(failures) if failures.is_empty() => {
                println!("perf floors OK ({})", path.display());
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("FAIL {f}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}
