//! One benchmark per paper table/figure.
//!
//! Each benchmark runs the reduced-fidelity simulation sweep that
//! regenerates the corresponding artifact — enough to track the cost and
//! the determinism of every figure's pipeline. The paper-fidelity numbers
//! come from `repro <experiment-id>` (see EXPERIMENTS.md).
//!
//! Table 1 and Table 2 are parameter tables: their "benchmark" checks that
//! building and validating the full parameter set is cheap and allocation-
//! sane, exercising the code that embodies those tables.

use std::time::Duration;

use ccsim_bench::bench_metrics;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ccsim_core::{run, CcAlgorithm, Params, SimConfig};
use ccsim_experiments::catalog;

/// Run a single representative point (one algorithm, one mpl) of an
/// experiment at bench fidelity.
fn run_point(spec: &ccsim_experiments::ExperimentSpec, series_ix: usize, mpl: u32) -> u64 {
    let cfg = spec.config(&spec.series[series_ix], mpl, bench_metrics(), 0xBE7C);
    run(cfg).expect("catalog configs validate").commits
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.bench_function("table1_params_validate", |b| {
        b.iter(|| {
            let p = black_box(Params::paper_baseline());
            p.validate().expect("table 2 must validate");
            black_box((p.tran_size(), p.expected_service_time()))
        });
    });
    g.bench_function("table2_baseline_config", |b| {
        b.iter(|| {
            let cfg = SimConfig::new(black_box(CcAlgorithm::Blocking));
            cfg.validate().expect("baseline config");
            black_box(cfg)
        });
    });
    g.finish();
}

/// Figures are grouped by the experiment that regenerates them; each figure
/// gets its own named benchmark so `cargo bench -- fig5` works.
fn bench_figures(c: &mut Criterion) {
    // (figure, experiment id, series index, representative mpl)
    // The representative point is chosen on the interesting part of each
    // curve (the knee/crossover region).
    let figures: &[(&str, &str, usize, u32)] = &[
        ("fig3", "exp1-inf", 0, 50),
        ("fig4", "exp1-1x2", 0, 25),
        ("fig5", "exp2", 2, 100),
        ("fig6", "exp2", 0, 100),
        ("fig7", "exp2", 1, 50),
        ("fig8", "exp3", 0, 25),
        ("fig9", "exp3", 2, 25),
        ("fig10", "exp3", 1, 50),
        ("fig11", "exp3-delay", 0, 100),
        ("fig12", "exp4-5x10", 0, 50),
        ("fig13", "exp4-5x10", 2, 50),
        ("fig14", "exp4-25x50", 2, 100),
        ("fig15", "exp4-25x50", 0, 100),
        ("fig16", "exp5-1s", 0, 25),
        ("fig17", "exp5-1s", 2, 25),
        ("fig18", "exp5-5s", 0, 50),
        ("fig19", "exp5-5s", 2, 50),
        ("fig20", "exp5-10s", 0, 100),
        ("fig21", "exp5-10s", 2, 100),
    ];
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for &(fig, exp_id, series_ix, mpl) in figures {
        let spec = catalog::by_id(exp_id).expect("catalog id");
        g.bench_function(fig, move |b| {
            b.iter(|| black_box(run_point(&spec, series_ix, mpl)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
