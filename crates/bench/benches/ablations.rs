//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! These report *simulated throughput* (committed transactions per bench
//! iteration at identical simulated horizons), so comparing the bench output
//! across functions in a group answers the design question directly:
//!
//! * `victim_policy` — does youngest-victim (the paper's choice) beat
//!   oldest-victim or fewest-locks under high contention?
//! * `prevention` — deadlock prevention (wait-die / wound-wait / no-waiting)
//!   vs. the paper's detection-based blocking.
//! * `restart_delay` — no delay vs. fixed one-transaction-time vs. the
//!   paper's adaptive delay, for immediate-restart.

use std::time::Duration;

use ccsim_bench::bench_metrics;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ccsim_core::{
    run, CcAlgorithm, Params, ResourceSpec, RestartDelayPolicy, SimConfig, VictimPolicy,
};
use ccsim_des::SimDuration;

fn high_contention() -> Params {
    Params::paper_baseline().with_mpl(100)
}

fn bench_victim_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("victim_policy");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for victim in VictimPolicy::ALL {
        g.bench_function(victim.label(), move |b| {
            b.iter(|| {
                let mut cfg = SimConfig::new(CcAlgorithm::Blocking)
                    .with_params(high_contention())
                    .with_metrics(bench_metrics());
                cfg.victim = victim;
                black_box(run(cfg).expect("valid").commits)
            });
        });
    }
    g.finish();
}

fn bench_prevention(c: &mut Criterion) {
    let mut g = c.benchmark_group("prevention");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for algo in [
        CcAlgorithm::Blocking,
        CcAlgorithm::StaticLocking,
        CcAlgorithm::WaitDie,
        CcAlgorithm::WoundWait,
        CcAlgorithm::NoWaiting,
        CcAlgorithm::BasicTO,
    ] {
        g.bench_function(algo.label(), move |b| {
            b.iter(|| {
                let cfg = SimConfig::new(algo)
                    .with_params(high_contention())
                    .with_metrics(bench_metrics());
                black_box(run(cfg).expect("valid").commits)
            });
        });
    }
    g.finish();
}

fn bench_restart_delay(c: &mut Criterion) {
    let mut g = c.benchmark_group("restart_delay");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    let policies: [(&str, RestartDelayPolicy); 3] = [
        ("none", RestartDelayPolicy::None),
        (
            "fixed_one_txn_time",
            RestartDelayPolicy::Fixed(Params::paper_baseline().expected_service_time()),
        ),
        ("adaptive", RestartDelayPolicy::Adaptive),
    ];
    for (name, policy) in policies {
        g.bench_function(name, move |b| {
            b.iter(|| {
                let params = Params::paper_baseline()
                    .with_mpl(100)
                    .with_resources(ResourceSpec::Infinite)
                    .with_restart_delay(policy);
                let cfg = SimConfig::new(CcAlgorithm::ImmediateRestart)
                    .with_params(params)
                    .with_metrics(bench_metrics());
                black_box(run(cfg).expect("valid").commits)
            });
        });
    }
    g.finish();
}

fn bench_cc_cpu_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("cc_cpu_cost");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for (name, ms) in [("zero", 0u64), ("one_ms", 1), ("five_ms", 5)] {
        g.bench_function(name, move |b| {
            b.iter(|| {
                let mut params = Params::paper_baseline().with_mpl(50);
                params.cc_cpu = SimDuration::from_millis(ms);
                let cfg = SimConfig::new(CcAlgorithm::Blocking)
                    .with_params(params)
                    .with_metrics(bench_metrics());
                black_box(run(cfg).expect("valid").commits)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_victim_policy,
    bench_prevention,
    bench_restart_delay,
    bench_cc_cpu_cost
);
criterion_main!(benches);
