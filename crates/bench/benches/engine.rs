//! Microbenchmarks of the simulator substrates.

use std::time::Duration;

use ccsim_bench::bench_metrics;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use ccsim_core::{run, CcAlgorithm, Params, SimConfig};
use ccsim_des::{Calendar, RandomSource, RngStreams, SimTime, Xoshiro256StarStar};
use ccsim_lockmgr::{LockManager, LockMode};
use ccsim_occ::Validator;
use ccsim_workload::{Generator, ObjId, TxnId};

fn bench_calendar(c: &mut Criterion) {
    let mut g = c.benchmark_group("calendar");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_pop_10k", |b| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        b.iter(|| {
            let mut cal = Calendar::new();
            for i in 0..10_000u64 {
                cal.schedule(SimTime::from_micros(rng.next_below(1_000_000)), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = cal.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        });
    });
    g.finish();
}

fn bench_lockmgr(c: &mut Criterion) {
    let mut g = c.benchmark_group("lockmgr");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("grant_release_1k_txns", |b| {
        b.iter(|| {
            let mut lm = LockManager::new();
            for t in 0..1_000u64 {
                // 8 reads + 2 upgrades, disjoint hot range per txn to mix
                // shared and exclusive paths.
                for o in 0..8u64 {
                    lm.request(TxnId(t), ObjId((t * 3 + o) % 500), LockMode::Read);
                }
                lm.request(TxnId(t), ObjId((t * 3) % 500), LockMode::Write);
                black_box(lm.release_all(TxnId(t)));
            }
        });
    });
    g.bench_function("deadlock_detection_chain", |b| {
        // A 32-deep waits-for chain, probed from the tail (no cycle).
        b.iter(|| {
            let mut lm = LockManager::new();
            for t in 0..32u64 {
                lm.request(TxnId(t), ObjId(t), LockMode::Write);
            }
            for t in 1..32u64 {
                lm.request(TxnId(t), ObjId(t - 1), LockMode::Write);
            }
            black_box(lm.find_deadlock(TxnId(31)))
        });
    });
    g.finish();
}

fn bench_occ(c: &mut Criterion) {
    let mut g = c.benchmark_group("occ");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("validate_commit_1k", |b| {
        b.iter(|| {
            let mut v = Validator::new();
            let mut failures = 0u32;
            for t in 0..1_000u64 {
                let readset: Vec<ObjId> = (0..8).map(|i| ObjId((t * 7 + i) % 1000)).collect();
                let start = SimTime::from_millis(t.saturating_sub(3));
                if v.validate(start, &readset).is_ok() {
                    v.commit(SimTime::from_millis(t), readset.into_iter().take(2));
                } else {
                    failures += 1;
                }
            }
            black_box(failures)
        });
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("generate_10k_specs", |b| {
        let params = Params::paper_baseline();
        b.iter(|| {
            let mut gen = Generator::new(&params, RngStreams::new(9).stream(0));
            let mut total = 0usize;
            for _ in 0..10_000 {
                total += gen.next_spec().num_reads();
            }
            black_box(total)
        });
    });
    g.finish();
}

/// End-to-end: simulated transaction commits per wall-second for each
/// algorithm at the baseline configuration.
fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for algo in CcAlgorithm::PAPER_TRIO {
        g.bench_function(format!("baseline_mpl50_{algo}"), move |b| {
            b.iter(|| {
                let cfg = SimConfig::new(algo)
                    .with_params(Params::paper_baseline().with_mpl(50))
                    .with_metrics(bench_metrics());
                black_box(run(cfg).expect("valid").commits)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_calendar,
    bench_lockmgr,
    bench_occ,
    bench_workload,
    bench_end_to_end
);
criterion_main!(benches);
