//! `ccsim-occ` — the optimistic concurrency control substrate.
//!
//! The paper's optimistic algorithm (after Kung & Robinson): "Transactions
//! are allowed to execute unhindered and are validated only after they have
//! reached their commit points. A transaction is restarted at its commit
//! point if it finds that any object that it read has been written by
//! another transaction which committed during its lifetime."
//!
//! [`Validator`] realizes this as backward validation against a per-object
//! *last committed write* timestamp. Validation and write-stamping happen in
//! one logical step (Kung–Robinson's critical section), which the simulator
//! guarantees by performing both at a single event. The deferred physical
//! updates then proceed under the protection of the already-published
//! stamps.

#![warn(missing_docs)]
#![warn(clippy::all)]

use ccsim_des::{SimDuration, SimTime};
use ccsim_workload::{ObjId, ObjMap};

/// Why a validation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// The read object that was overwritten.
    pub obj: ObjId,
    /// When the conflicting transaction committed.
    pub committed_at: SimTime,
}

/// Backward-validation state: the last committed write time of each object.
///
/// The stamp table is a sparse [`ObjMap`] holding an entry only for objects
/// with a committed write on record, so memory follows write traffic (and
/// shrinks again under [`Validator::prune_before`]) rather than `db_size` —
/// at `db_size = 10^8` a dense stamp array would cost 800 MB up front. An
/// absent entry means "never written", which is observably identical to the
/// old dense layout's `SimTime::ZERO` sentinel: a conflict requires
/// `committed_at > start`, and no attempt starts before time zero, so a
/// (physically impossible) commit at exactly time zero is treated as
/// erasing the stamp rather than setting an unobservable one.
#[derive(Debug, Default)]
pub struct Validator {
    last_write: ObjMap<SimTime>,
    validations: u64,
    failures: u64,
}

impl Validator {
    /// An empty validator (no committed writes yet).
    #[must_use]
    pub fn new() -> Self {
        Validator::default()
    }

    /// An empty validator presized for small-regime runs. The stamp table
    /// is sparse, so `db_size` is only a pre-sizing hint (capped): big
    /// databases start small and the table grows with write traffic.
    #[must_use]
    pub fn with_capacity(db_size: usize) -> Self {
        Validator {
            last_write: ObjMap::with_capacity(db_size.min(1024)),
            ..Validator::default()
        }
    }

    /// Validate a transaction attempt that started executing at `start` and
    /// read `readset`.
    ///
    /// # Errors
    /// Returns the first [`Conflict`] found: some object in the readset was
    /// written by a transaction that committed *during the attempt's
    /// lifetime* (strictly after `start`).
    pub fn validate(&mut self, start: SimTime, readset: &[ObjId]) -> Result<(), Conflict> {
        self.validations += 1;
        for &obj in readset {
            if let Some(committed_at) = self.last_write.get(obj) {
                if committed_at > start {
                    self.failures += 1;
                    return Err(Conflict { obj, committed_at });
                }
            }
        }
        Ok(())
    }

    /// Record a successful commit at time `now` writing `writeset`. Must be
    /// called at the same instant as the successful [`Validator::validate`]
    /// (the critical section).
    pub fn commit(&mut self, now: SimTime, writeset: impl IntoIterator<Item = ObjId>) {
        for obj in writeset {
            if now == SimTime::ZERO {
                // Equivalent to the dense layout's "never written" sentinel.
                self.last_write.remove(obj);
            } else {
                self.last_write.insert(obj, now);
            }
        }
    }

    /// Validate and, on success, commit in one step.
    ///
    /// # Errors
    /// As [`Validator::validate`].
    pub fn validate_and_commit(
        &mut self,
        start: SimTime,
        now: SimTime,
        readset: &[ObjId],
        writeset: impl IntoIterator<Item = ObjId>,
    ) -> Result<(), Conflict> {
        self.validate(start, readset)?;
        self.commit(now, writeset);
        Ok(())
    }

    /// The last committed write time of `obj`, if any transaction has
    /// committed a write to it.
    #[must_use]
    pub fn last_write(&self, obj: ObjId) -> Option<SimTime> {
        self.last_write.get(obj)
    }

    /// Drop write stamps at or before `horizon`. Any attempt that started at
    /// or after `horizon` can never conflict with them, so once no active
    /// attempt predates `horizon` the entries are dead weight. Returns how
    /// many stamps were pruned.
    pub fn prune_before(&mut self, horizon: SimTime) -> usize {
        let before = self.last_write.len();
        self.last_write.retain(|_, t| t > horizon);
        before - self.last_write.len()
    }

    /// Number of objects with a recorded committed write.
    #[must_use]
    pub fn tracked_objects(&self) -> usize {
        self.last_write.len()
    }

    /// Lifetime counters: `(validations, failures)`.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (self.validations, self.failures)
    }
}

/// An epoch-batched transaction id in the Silo style: the commit epoch in
/// the high part, a within-epoch sequence number in the low part. Ids are
/// totally ordered and strictly increasing in commit order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SiloTid {
    /// The epoch the commit landed in (`now / epoch_len`).
    pub epoch: u64,
    /// Commit sequence number within the epoch, starting at 1.
    pub seq: u64,
}

/// Silo-style epoch OCC validation state.
///
/// Each object carries a *TID word*, modeled as the simulated instant of the
/// last committed write to it (the monotone stand-in for Silo's packed
/// version numbers). A reader records the word at access time; validation at
/// the commit point succeeds iff every recorded word is unchanged — i.e. no
/// write to a read object committed *after the read observed it*. This is
/// strictly more permissive than Kung–Robinson backward validation (which
/// conflicts on any write after attempt start): a read that already saw the
/// newer version revalidates cleanly.
///
/// Commit ids are epoch-batched: the epoch is `now / epoch_len` and a
/// per-epoch counter orders commits within it, as in Silo's group commit.
/// Like [`Validator`], the word table is a sparse [`ObjMap`]: an absent
/// entry means "never written" and is observably identical to a
/// `SimTime::ZERO` word.
#[derive(Debug)]
pub struct SiloValidator {
    words: ObjMap<SimTime>,
    epoch_len: SimDuration,
    current_epoch: u64,
    epoch_seq: u64,
    epochs_advanced: u64,
    validations: u64,
    failures: u64,
}

impl SiloValidator {
    /// Silo's default epoch length (40 ms in the paper).
    pub const DEFAULT_EPOCH: SimDuration = SimDuration::from_millis(40);

    /// An empty validator with the given epoch length.
    ///
    /// # Panics
    /// Panics if `epoch_len` is zero.
    #[must_use]
    pub fn new(epoch_len: SimDuration) -> Self {
        assert!(!epoch_len.is_zero(), "epoch length must be positive");
        SiloValidator {
            words: ObjMap::default(),
            epoch_len,
            current_epoch: 0,
            epoch_seq: 0,
            epochs_advanced: 0,
            validations: 0,
            failures: 0,
        }
    }

    /// The TID word of `obj` as a reader observes it now.
    #[must_use]
    pub fn word(&self, obj: ObjId) -> SimTime {
        self.words.get(obj).unwrap_or(SimTime::ZERO)
    }

    /// Validate a read set of `(object, word observed at read time)` pairs.
    ///
    /// # Errors
    /// Returns the first [`Conflict`] found: some read object's TID word
    /// changed after the read observed it (a write committed in between).
    pub fn validate(&mut self, readset: &[(ObjId, SimTime)]) -> Result<(), Conflict> {
        self.validations += 1;
        for &(obj, observed) in readset {
            let committed_at = self.word(obj);
            if committed_at > observed {
                self.failures += 1;
                return Err(Conflict { obj, committed_at });
            }
        }
        Ok(())
    }

    /// Record a successful commit at `now` writing `writeset`, assigning the
    /// next epoch-batched commit id. Must be called at the same instant as
    /// the successful [`SiloValidator::validate`] (the critical section).
    pub fn commit(&mut self, now: SimTime, writeset: impl IntoIterator<Item = ObjId>) -> SiloTid {
        let epoch = now.as_micros() / self.epoch_len.as_micros();
        if epoch > self.current_epoch {
            self.current_epoch = epoch;
            self.epoch_seq = 0;
            self.epochs_advanced += 1;
        }
        self.epoch_seq += 1;
        for obj in writeset {
            if now == SimTime::ZERO {
                self.words.remove(obj);
            } else {
                self.words.insert(obj, now);
            }
        }
        SiloTid {
            epoch: self.current_epoch,
            seq: self.epoch_seq,
        }
    }

    /// Drop TID words at or before `horizon` (see [`Validator::prune_before`]).
    pub fn prune_before(&mut self, horizon: SimTime) -> usize {
        let before = self.words.len();
        self.words.retain(|_, t| t > horizon);
        before - self.words.len()
    }

    /// Number of objects with a recorded word.
    #[must_use]
    pub fn tracked_objects(&self) -> usize {
        self.words.len()
    }

    /// Lifetime counters: `(validations, failures, epochs_advanced)`.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.validations, self.failures, self.epochs_advanced)
    }
}

impl Default for SiloValidator {
    fn default() -> Self {
        SiloValidator::new(SiloValidator::DEFAULT_EPOCH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(v: u64) -> ObjId {
        ObjId(v)
    }
    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_validator_accepts_everything() {
        let mut v = Validator::new();
        assert!(v.validate(t(0), &[o(1), o(2), o(3)]).is_ok());
        assert_eq!(v.counters(), (1, 0));
    }

    #[test]
    fn conflict_when_read_overwritten_during_lifetime() {
        let mut v = Validator::new();
        // T2 commits a write to obj 5 at t=10.
        v.commit(t(10), [o(5)]);
        // An attempt that started at t=3 and read obj 5 must fail.
        let err = v.validate(t(3), &[o(1), o(5)]).unwrap_err();
        assert_eq!(err.obj, o(5));
        assert_eq!(err.committed_at, t(10));
        assert_eq!(v.counters(), (1, 1));
    }

    #[test]
    fn no_conflict_with_writes_before_start() {
        let mut v = Validator::new();
        v.commit(t(10), [o(5)]);
        // An attempt that started at t=10 (or later) saw that committed
        // state when it read — no conflict.
        assert!(v.validate(t(10), &[o(5)]).is_ok());
        assert!(v.validate(t(11), &[o(5)]).is_ok());
    }

    #[test]
    fn write_write_does_not_conflict_by_itself() {
        // Backward validation only checks the readset; a blind write to an
        // object someone else wrote is fine (our workload always reads what
        // it writes, so this matches the paper's conflict definition).
        let mut v = Validator::new();
        v.commit(t(10), [o(5)]);
        assert!(v.validate_and_commit(t(3), t(12), &[o(1)], [o(5)]).is_ok());
        assert_eq!(v.last_write(o(5)), Some(t(12)));
    }

    #[test]
    fn validate_and_commit_publishes_stamps_only_on_success() {
        let mut v = Validator::new();
        v.commit(t(10), [o(1)]);
        let res = v.validate_and_commit(t(0), t(20), &[o(1)], [o(2)]);
        assert!(res.is_err());
        assert_eq!(v.last_write(o(2)), None, "failed commit must not stamp");
        let res = v.validate_and_commit(t(15), t(20), &[o(1)], [o(2)]);
        assert!(res.is_ok());
        assert_eq!(v.last_write(o(2)), Some(t(20)));
    }

    #[test]
    fn later_write_overwrites_stamp() {
        let mut v = Validator::new();
        v.commit(t(5), [o(9)]);
        v.commit(t(8), [o(9)]);
        assert_eq!(v.last_write(o(9)), Some(t(8)));
        // A reader that started between the two writes conflicts with the
        // second one.
        assert!(v.validate(t(6), &[o(9)]).is_err());
    }

    #[test]
    fn read_only_transactions_still_validate() {
        let mut v = Validator::new();
        v.commit(t(10), [o(3)]);
        assert!(v.validate(t(5), &[o(3)]).is_err());
        // Read-only commit publishes nothing.
        assert!(v.validate_and_commit(t(12), t(13), &[o(3)], []).is_ok());
        assert_eq!(v.last_write(o(3)), Some(t(10)));
    }

    #[test]
    fn pruning_drops_only_safe_stamps() {
        let mut v = Validator::new();
        v.commit(t(1), [o(1)]);
        v.commit(t(5), [o(2)]);
        v.commit(t(9), [o(3)]);
        assert_eq!(v.tracked_objects(), 3);
        let pruned = v.prune_before(t(5));
        assert_eq!(pruned, 2); // stamps at t=1 and t=5
        assert_eq!(v.last_write(o(3)), Some(t(9)));
        assert_eq!(v.last_write(o(1)), None);
        // An attempt started after the horizon behaves identically.
        assert!(v.validate(t(5), &[o(1), o(2)]).is_ok());
        assert!(v.validate(t(5), &[o(3)]).is_err());
    }

    #[test]
    fn empty_readset_always_validates() {
        let mut v = Validator::new();
        v.commit(t(10), [o(1)]);
        assert!(v.validate(t(0), &[]).is_ok());
    }

    #[test]
    fn silo_unchanged_words_validate() {
        let mut v = SiloValidator::default();
        v.commit(t(5), [o(1)]);
        // A read that observed the word at t=6 (after the write) is clean.
        assert!(v.validate(&[(o(1), t(6))]).is_ok());
        // A never-written object observed at any time is clean.
        assert!(v.validate(&[(o(2), SimTime::ZERO)]).is_ok());
        assert_eq!(v.counters().0, 2);
    }

    #[test]
    fn silo_changed_word_fails_validation() {
        let mut v = SiloValidator::default();
        v.commit(t(5), [o(1)]);
        // Observed before the write committed: the word changed underneath.
        let err = v.validate(&[(o(1), t(3))]).unwrap_err();
        assert_eq!(err.obj, o(1));
        assert_eq!(err.committed_at, t(5));
        assert_eq!(v.counters().1, 1);
    }

    #[test]
    fn silo_is_more_permissive_than_attempt_start_validation() {
        // The Kung–Robinson validator conflicts on any write after attempt
        // start; Silo revalidates cleanly if the read already saw it.
        let mut kr = Validator::new();
        let mut silo = SiloValidator::default();
        kr.commit(t(5), [o(1)]);
        silo.commit(t(5), [o(1)]);
        // Attempt started at t=1, read obj1 at t=6 (post-write).
        assert!(kr.validate(t(1), &[o(1)]).is_err());
        assert!(silo.validate(&[(o(1), t(6))]).is_ok());
    }

    #[test]
    fn silo_tids_are_epoch_batched_and_monotone() {
        let mut v = SiloValidator::new(SimDuration::from_secs(1));
        let a = v.commit(SimTime::from_millis(100), [o(1)]);
        let b = v.commit(SimTime::from_millis(900), [o(2)]);
        let c = v.commit(SimTime::from_millis(2500), [o(3)]);
        assert_eq!((a.epoch, a.seq), (0, 1));
        assert_eq!((b.epoch, b.seq), (0, 2));
        assert_eq!((c.epoch, c.seq), (2, 1));
        assert!(a < b && b < c, "tids must be strictly increasing");
        assert_eq!(v.counters().2, 1, "one epoch advance");
    }

    #[test]
    fn silo_pruning_drops_only_safe_words() {
        let mut v = SiloValidator::default();
        v.commit(t(1), [o(1)]);
        v.commit(t(9), [o(2)]);
        assert_eq!(v.tracked_objects(), 2);
        assert_eq!(v.prune_before(t(5)), 1);
        assert_eq!(v.word(o(1)), SimTime::ZERO);
        assert_eq!(v.word(o(2)), t(9));
    }
}
