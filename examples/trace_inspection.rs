//! Structured tracing: follow individual transactions through the model.
//!
//! Runs a short, highly contended simulation with tracing enabled, then
//! prints (a) the full lifecycle of the transaction that restarted the most
//! and (b) the deadlock victims picked by the blocking algorithm.
//!
//! ```text
//! cargo run --release --example trace_inspection
//! ```

use std::collections::HashMap;

use ccsim_core::{
    run_with_trace, CcAlgorithm, Confidence, MetricsConfig, Params, SimConfig, TraceEvent, TxnId,
};
use ccsim_des::SimDuration;

fn main() {
    let mut params = Params::paper_baseline().with_mpl(15);
    params.db_size = 60; // hot database: plenty of conflicts in a short run
    params.write_prob = 0.6;
    let cfg = SimConfig::new(CcAlgorithm::Blocking)
        .with_params(params)
        .with_metrics(MetricsConfig {
            warmup_batches: 0,
            batches: 1,
            batch_time: SimDuration::from_secs(20),
            confidence: Confidence::Ninety,
        })
        .with_seed(0x7ACE);
    let (report, trace) = run_with_trace(cfg, 100_000).expect("valid configuration");

    println!(
        "20 simulated seconds: {} commits, {} blocks, {} restarts, {} deadlocks\n",
        report.commits, report.blocks, report.restarts, report.deadlocks
    );

    // Who restarted the most?
    let mut restarts: HashMap<TxnId, u32> = HashMap::new();
    for (_, e) in trace.events() {
        if let TraceEvent::Restart(t) = e {
            *restarts.entry(*t).or_default() += 1;
        }
    }
    if let Some((&victim, &n)) = restarts.iter().max_by_key(|&(_, n)| n) {
        println!("Most-restarted transaction: {victim} ({n} restarts). Lifecycle:");
        for (at, e) in trace.for_txn(victim) {
            println!("  [{at}] {e}");
        }
    }

    println!("\nDeadlocks resolved:");
    let mut shown = 0;
    for (at, e) in trace.events() {
        if let TraceEvent::Deadlock { detector, victim } = e {
            println!("  [{at}] cycle detected via {detector}; restarted {victim}");
            shown += 1;
            if shown >= 5 {
                println!("  ... ({} total)", report.deadlocks);
                break;
            }
        }
    }
    if shown == 0 {
        println!("  (none in this run)");
    }
}
