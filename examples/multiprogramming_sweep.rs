//! Sweep the multiprogramming level for the paper's three algorithms under
//! a chosen resource configuration, printing a throughput table — the core
//! of the paper's Figures 5 and 8.
//!
//! Usage:
//! ```text
//! cargo run --release --example multiprogramming_sweep [infinite|1x2|5x10|25x50]
//! ```

use ccsim_core::{run, CcAlgorithm, MetricsConfig, Params, ResourceSpec, SimConfig};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "1x2".to_string());
    let resources = match arg.as_str() {
        "infinite" => ResourceSpec::Infinite,
        "1x2" => ResourceSpec::ONE_CPU_TWO_DISKS,
        "5x10" => ResourceSpec::FIVE_CPUS_TEN_DISKS,
        "25x50" => ResourceSpec::TWENTY_FIVE_CPUS_FIFTY_DISKS,
        other => {
            eprintln!("unknown resource spec {other:?}; use infinite|1x2|5x10|25x50");
            std::process::exit(2);
        }
    };
    println!("# Throughput (commits/sec) vs multiprogramming level — {arg}");
    println!(
        "{:>5} {:>22} {:>22} {:>22}",
        "mpl", "blocking", "immediate-restart", "optimistic"
    );
    for mpl in Params::PAPER_MPLS {
        print!("{mpl:>5}");
        for algo in CcAlgorithm::PAPER_TRIO {
            let cfg = SimConfig::new(algo)
                .with_params(
                    Params::paper_baseline()
                        .with_mpl(mpl)
                        .with_resources(resources),
                )
                .with_metrics(MetricsConfig::quick());
            let r = run(cfg).expect("valid configuration");
            print!(
                "{:>15.2} ±{:>4.2}",
                r.throughput.mean, r.throughput.half_width
            );
        }
        println!();
    }
}
