//! Access skew: the paper's uniform workload vs. an 80/20 hotspot.
//!
//! The paper's database is uniformly accessed; real databases are not. This
//! example applies the classic "80% of accesses to 20% of the pages" rule
//! and shows that skew moves every curve left: conflicts at a given mpl
//! look like the uniform workload at several times that mpl, and blocking's
//! thrashing knee arrives much earlier.
//!
//! ```text
//! cargo run --release --example hotspot_skew
//! ```

use ccsim_core::{run, AccessPattern, CcAlgorithm, MetricsConfig, Params, SimConfig};

fn main() {
    println!("blocking algorithm, 1 CPU / 2 disks; uniform vs 80/20 hotspot\n");
    println!(
        "{:>5} {:>16} {:>12} {:>16} {:>12}",
        "mpl", "uniform tps", "blk/cmt", "hotspot tps", "blk/cmt"
    );
    for mpl in [5, 10, 25, 50, 100] {
        let uniform = run(SimConfig::new(CcAlgorithm::Blocking)
            .with_params(Params::paper_baseline().with_mpl(mpl))
            .with_metrics(MetricsConfig::quick()))
        .expect("valid configuration");
        let mut params = Params::paper_baseline().with_mpl(mpl);
        params.access = AccessPattern::Hotspot {
            data_frac: 0.2,
            access_frac: 0.8,
        };
        let hotspot = run(SimConfig::new(CcAlgorithm::Blocking)
            .with_params(params)
            .with_metrics(MetricsConfig::quick()))
        .expect("valid configuration");
        println!(
            "{:>5} {:>10.2} ±{:<4.2} {:>12.2} {:>10.2} ±{:<4.2} {:>12.2}",
            mpl,
            uniform.throughput.mean,
            uniform.throughput.half_width,
            uniform.block_ratio,
            hotspot.throughput.mean,
            hotspot.throughput.half_width,
            hotspot.block_ratio,
        );
    }
    println!(
        "\nAn 80/20 skew concentrates conflicts on a fifth of the database:\n\
         the effective contention at mpl m resembles the uniform workload at\n\
         roughly 3-4x that multiprogramming level."
    );
}
