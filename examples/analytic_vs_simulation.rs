//! Analytical model vs. simulation — the methodological heart of the paper,
//! live. Exact Mean Value Analysis predicts the *contention-free* closed
//! network; the simulator then adds data contention, and the gap between
//! the two IS the cost of concurrency control.
//!
//! ```text
//! cargo run --release --example analytic_vs_simulation
//! ```

use ccsim_analytic::{AnalyticModel, Contention};
use ccsim_core::{run, CcAlgorithm, MetricsConfig, Params, SimConfig};

fn main() {
    println!("1 CPU / 2 disks, 200 terminals; MVA = no-contention prediction.\n");
    println!(
        "{:>5} {:>10} {:>12} {:>14} {:>12} {:>14}",
        "mpl", "MVA tps", "sim tps*", "CC cost", "pred blocks", "sim blocks"
    );
    for mpl in [5, 10, 25, 50, 75, 100] {
        let params = Params::paper_baseline().with_mpl(mpl);
        // With 200 terminals behind a small mpl cap, the ready queue keeps
        // every active slot full: the right contention-free reference is
        // the saturated MVA (no think delay), populated with `mpl`
        // customers.
        let model = AnalyticModel::new(params.clone());
        let mva = model
            .mva_saturated(mpl)
            .expect("finite resources")
            .throughput;
        let sim = run(SimConfig::new(CcAlgorithm::Blocking)
            .with_params(params.clone())
            .with_metrics(MetricsConfig::quick()))
        .expect("valid configuration");
        let cc_cost = 100.0 * (1.0 - sim.throughput.mean / mva);
        let predicted_blocks = Contention::new(&params).expected_block_ratio(mpl);
        println!(
            "{:>5} {:>10.2} {:>12.2} {:>13.1}% {:>12.2} {:>14.2}",
            mpl, mva, sim.throughput.mean, cc_cost, predicted_blocks, sim.block_ratio
        );
    }
    println!(
        "\n* blocking algorithm. At low mpl the simulator slightly beats MVA\n\
         because the model's service times are deterministic (less queueing\n\
         than MVA's exponential assumption); the growing positive gap beyond\n\
         the knee is the cost of data contention. Tay's thrashing heuristic\n\
         puts that knee at mpl ≈ {}.",
        Contention::new(&Params::paper_baseline()).thrashing_mpl(1.5)
    );
}
