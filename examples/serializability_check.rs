//! Serializability as an observable: record the execution history of a
//! contended run and verify it with the conflict-graph checker — then do
//! the same with concurrency control switched off (`NoCc`) and watch the
//! checker produce a concrete conflict cycle.
//!
//! ```text
//! cargo run --release --example serializability_check
//! ```

use ccsim_core::{
    check_conflict_serializable, run_with_history, CcAlgorithm, MetricsConfig, Params, SimConfig,
};

fn contended() -> Params {
    let mut p = Params::paper_baseline().with_mpl(20);
    p.db_size = 100; // hot database: conflicts on nearly every transaction
    p.write_prob = 0.75;
    p
}

fn main() {
    println!("Workload: 100-page database, write_prob 0.75, mpl 20 — heavy conflict.\n");
    for algo in [
        CcAlgorithm::Blocking,
        CcAlgorithm::ImmediateRestart,
        CcAlgorithm::Optimistic,
        CcAlgorithm::NoCc,
    ] {
        let mut cfg = SimConfig::new(algo)
            .with_params(contended())
            .with_metrics(MetricsConfig::quick());
        cfg.record_history = true;
        let (report, history) = run_with_history(cfg).expect("valid configuration");
        print!(
            "{:<18} {:>6} commits, {:>5} restarts  ->  ",
            algo.label(),
            report.commits,
            report.restarts
        );
        match check_conflict_serializable(&history) {
            Ok(order) => println!(
                "serializable (witness order over {} transactions)",
                order.len()
            ),
            Err(cycle) => {
                println!("NOT serializable:");
                println!("    {cycle}");
            }
        }
    }
    println!(
        "\nThe three real algorithms always pass; the no-cc baseline commits\n\
         the most transactions but the checker catches its isolation\n\
         violations — the price of that throughput."
    );
}
