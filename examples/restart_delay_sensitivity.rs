//! The paper's restart-delay sensitivity analysis (§4.2): immediate-restart
//! performance is sensitive to the delay length — "a delay of about one
//! transaction time is best, and throughput begins to drop off rapidly when
//! the delay exceeds more than a few transaction times."
//!
//! This example sweeps fixed restart delays expressed as multiples of the
//! expected transaction service time, plus the paper's adaptive policy, for
//! the immediate-restart algorithm under infinite resources (where the
//! sensitivity is strongest).
//!
//! ```text
//! cargo run --release --example restart_delay_sensitivity
//! ```

use ccsim_core::{
    run, CcAlgorithm, MetricsConfig, Params, ResourceSpec, RestartDelayPolicy, SimConfig,
};
use ccsim_des::SimDuration;

fn main() {
    let base = Params::paper_baseline()
        .with_mpl(100)
        .with_resources(ResourceSpec::Infinite);
    let txn_time = base.expected_service_time();
    println!(
        "Immediate-restart, infinite resources, mpl = 100; one transaction\n\
         time = {:.3} s\n",
        txn_time.as_secs_f64()
    );
    println!(
        "{:>22} {:>14} {:>16}",
        "restart delay", "tps", "restarts/commit"
    );

    let multiples = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
    for &m in &multiples {
        let delay = SimDuration::from_secs_f64(txn_time.as_secs_f64() * m);
        let policy = if delay.is_zero() {
            RestartDelayPolicy::None
        } else {
            RestartDelayPolicy::Fixed(delay)
        };
        let cfg = SimConfig::new(CcAlgorithm::ImmediateRestart)
            .with_params(base.clone().with_restart_delay(policy))
            .with_metrics(MetricsConfig::quick());
        let r = run(cfg).expect("valid configuration");
        println!(
            "{:>15.1}x txn {:>9.2} ±{:<3.2} {:>16.2}",
            m, r.throughput.mean, r.throughput.half_width, r.restart_ratio
        );
    }

    let cfg = SimConfig::new(CcAlgorithm::ImmediateRestart)
        .with_params(base.with_restart_delay(RestartDelayPolicy::Adaptive))
        .with_metrics(MetricsConfig::quick());
    let r = run(cfg).expect("valid configuration");
    println!(
        "{:>22} {:>9.2} ±{:<3.2} {:>16.2}",
        "adaptive (paper)", r.throughput.mean, r.throughput.half_width, r.restart_ratio
    );
    println!(
        "\nExpected shape: throughput peaks around one transaction time and\n\
         decays for long delays; the adaptive policy tracks the peak."
    );
}
