//! Large-transaction starvation under restart-oriented concurrency control.
//!
//! A mixed workload — 90% ordinary Table-2 transactions, 10% large 40–60
//! page transactions — exposes the classic weakness of restart-based
//! methods: the large transactions' long lifetimes make them perpetual
//! conflict victims. Blocking serializes around them instead.
//!
//! ```text
//! cargo run --release --example mixed_workload
//! ```

use ccsim_core::{run, CcAlgorithm, MetricsConfig, Params, SimConfig};
use ccsim_workload::TxnClass;

fn main() {
    let mut params = Params::paper_baseline().with_mpl(25);
    params.primary_weight = 0.9;
    params.extra_classes.push(TxnClass {
        weight: 0.1,
        min_size: 40,
        max_size: 60,
        write_prob: 0.25,
    });

    println!(
        "Mixed workload: 90% small (4-12 pages), 10% large (40-60 pages);\n\
         1 CPU / 2 disks, mpl 25.\n"
    );
    println!(
        "{:<18} {:>8} {:>8} {:>11} {:>11} {:>12} {:>12}",
        "algorithm", "sm cmts", "lg cmts", "sm rst/cmt", "lg rst/cmt", "sm resp (s)", "lg resp (s)"
    );
    for algo in CcAlgorithm::PAPER_TRIO {
        let cfg = SimConfig::new(algo)
            .with_params(params.clone())
            .with_metrics(MetricsConfig::quick());
        let r = run(cfg).expect("valid configuration");
        let small = &r.class_reports[0];
        let large = &r.class_reports[1];
        println!(
            "{:<18} {:>8} {:>8} {:>11.2} {:>11.2} {:>12.1} {:>12.1}",
            algo.label(),
            small.commits,
            large.commits,
            small.restart_ratio,
            large.restart_ratio,
            small.response_time_mean,
            large.response_time_mean,
        );
    }
    println!(
        "\nExpected shape: under the optimistic algorithm the large class's\n\
         restarts-per-commit and response time explode relative to the small\n\
         class; blocking keeps the two classes far closer together."
    );
}
