//! Quickstart: simulate the paper's baseline system (Table 2: 1000-page
//! database, 200 terminals, 1 CPU / 2 disks, mpl 25) under each of the three
//! concurrency control algorithms and print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ccsim_core::{run, CcAlgorithm, MetricsConfig, SimConfig};

fn main() {
    println!("Paper baseline (Table 2), mpl = 25, 1 CPU / 2 disks\n");
    println!(
        "{:<18} {:>12} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "algorithm", "tps", "resp (s)", "blk/cmt", "rst/cmt", "disk total", "disk useful"
    );
    for algo in CcAlgorithm::PAPER_TRIO {
        let cfg = SimConfig::new(algo).with_metrics(MetricsConfig::quick());
        let r = run(cfg).expect("baseline configuration is valid");
        println!(
            "{:<18} {:>7.2} ±{:<4.2} {:>12.2} {:>10.2} {:>10.2} {:>11.1}% {:>11.1}%",
            algo.label(),
            r.throughput.mean,
            r.throughput.half_width,
            r.response_time_mean,
            r.block_ratio,
            r.restart_ratio,
            100.0 * r.disk_util_total.mean,
            100.0 * r.disk_util_useful.mean,
        );
    }
    println!(
        "\n(90% confidence half-widths from batch means; see `repro list` for\n\
         the full figure catalog.)"
    );
}
