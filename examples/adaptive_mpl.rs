//! The paper's closing open problem: "adaptive algorithms that dynamically
//! adjust the multiprogramming level in order to maximize system throughput
//! need to be designed."
//!
//! This example implements the simplest such controller offline: a
//! hill-climbing search over the multiprogramming level, using simulation
//! runs as its oracle, for each concurrency control algorithm. It prints
//! the mpl it settles on and compares it against the fixed paper grid.
//!
//! ```text
//! cargo run --release --example adaptive_mpl
//! ```

use ccsim_core::{run, CcAlgorithm, MetricsConfig, Params, SimConfig};

fn throughput_at(algo: CcAlgorithm, mpl: u32) -> f64 {
    let cfg = SimConfig::new(algo)
        .with_params(Params::paper_baseline().with_mpl(mpl))
        .with_metrics(MetricsConfig::quick())
        .with_seed(0xADA7 ^ u64::from(mpl));
    run(cfg).expect("valid configuration").throughput.mean
}

/// Hill-climb on mpl with a multiplicative step, shrinking the step on
/// reversals — a crude but effective stand-in for an online controller.
fn search(algo: CcAlgorithm) -> (u32, f64, u32) {
    let mut mpl: u32 = 10;
    let mut best = throughput_at(algo, mpl);
    let mut evals = 1;
    let mut step: i64 = 16;
    while step != 0 {
        let candidate = (i64::from(mpl) + step).clamp(1, 200) as u32;
        if candidate == mpl {
            step /= 2;
            continue;
        }
        let tps = throughput_at(algo, candidate);
        evals += 1;
        if tps > best {
            best = tps;
            mpl = candidate;
        } else {
            // Reverse and shrink.
            step = -step / 2;
        }
    }
    (mpl, best, evals)
}

fn main() {
    println!("Hill-climbing the multiprogramming level (1 CPU / 2 disks)\n");
    println!(
        "{:<18} {:>9} {:>12} {:>8}   fixed-grid best (paper sweep)",
        "algorithm", "best mpl", "tps", "evals"
    );
    for algo in CcAlgorithm::PAPER_TRIO {
        let (mpl, tps, evals) = search(algo);
        // Reference: the paper's fixed grid.
        let (grid_mpl, grid_tps) = Params::PAPER_MPLS
            .iter()
            .map(|&m| (m, throughput_at(algo, m)))
            .fold(
                (0, f64::MIN),
                |acc, (m, t)| if t > acc.1 { (m, t) } else { acc },
            );
        println!(
            "{:<18} {:>9} {:>12.3} {:>8}   mpl {} -> {:.3} tps",
            algo.label(),
            mpl,
            tps,
            evals,
            grid_mpl,
            grid_tps
        );
    }
    println!(
        "\nThe controller should land near the knee of each curve (the paper\n\
         found blocking's peak near mpl 25 for this configuration)."
    );
}
