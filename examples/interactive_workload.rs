//! Interactive (form-screen) workloads — the paper's Experiment 5.
//!
//! Transactions read their pages, the user stares at the screen for an
//! exponential internal think time *while the transaction holds its locks*,
//! and then the writes are performed. The paper's finding: as internal
//! think time grows, lock-holding times explode and the optimistic
//! algorithm overtakes blocking.
//!
//! ```text
//! cargo run --release --example interactive_workload
//! ```

use ccsim_core::{run, CcAlgorithm, MetricsConfig, Params, SimConfig};
use ccsim_des::SimDuration;

fn main() {
    // (internal think, external think) pairs from the paper: the external
    // think time grows with the internal one to keep the ratio of thinking
    // to active transactions roughly constant (§4.5).
    let settings = [(0u64, 1u64), (1, 3), (5, 11), (10, 21)];
    let mpl = 50;

    println!("Experiment 5: 1 CPU / 2 disks, mpl = {mpl}\n");
    println!(
        "{:>10} {:>10}   {:>18} {:>18} {:>18}",
        "int think", "ext think", "blocking tps", "imm-restart tps", "optimistic tps"
    );
    for (int_s, ext_s) in settings {
        print!("{int_s:>9}s {ext_s:>9}s  ");
        let mut tps = Vec::new();
        for algo in CcAlgorithm::PAPER_TRIO {
            let params = Params::paper_baseline()
                .with_mpl(mpl)
                .with_think_times(SimDuration::from_secs(ext_s), SimDuration::from_secs(int_s));
            let cfg = SimConfig::new(algo)
                .with_params(params)
                .with_metrics(MetricsConfig::quick());
            let r = run(cfg).expect("valid configuration");
            tps.push(r.throughput.mean);
            print!(
                " {:>12.3} ±{:<4.2}",
                r.throughput.mean, r.throughput.half_width
            );
        }
        let winner = if tps[0] >= tps[1] && tps[0] >= tps[2] {
            "blocking"
        } else if tps[2] >= tps[1] {
            "optimistic"
        } else {
            "immediate-restart"
        };
        println!("   <- {winner} wins");
    }
    println!(
        "\nThe crossover the paper reports: blocking wins at short internal\n\
         thinks; the optimistic algorithm wins once locks are held across\n\
         multi-second user pauses."
    );
}
