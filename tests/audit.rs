//! End-to-end exercises of the online invariant auditor (`ccsim-audit`):
//! real runs of every algorithm must audit clean, per-algorithm event
//! legality must hold on random configurations, a deliberately injected
//! invariant break must be caught with a contextual report, and auditing a
//! sweep must not perturb it no matter how many worker threads run it.

use ccsim_audit::{attach, run_with_audit};
use ccsim_core::{
    run_with_trace, CcAlgorithm, Confidence, MetricsConfig, Params, SimConfig, Simulator,
    TraceEvent,
};
use ccsim_des::SimDuration;
use ccsim_experiments::{catalog, json, run_experiment, Fidelity, RetryPolicy, RunOptions};
use proptest::prelude::*;

/// A short but contended configuration: small database, writes likely,
/// brisk arrivals — enough conflicts to exercise every auditor check.
fn contended(algo: CcAlgorithm, mpl: u32, num_terms: u32, seed: u64) -> SimConfig {
    let mut params = Params::paper_baseline();
    params.db_size = 100;
    params.min_size = 2;
    params.max_size = 8;
    params.write_prob = 0.5;
    params.num_terms = num_terms;
    params.mpl = mpl;
    params.ext_think_time = SimDuration::from_millis(500);
    SimConfig::new(algo)
        .with_params(params)
        .with_metrics(MetricsConfig {
            warmup_batches: 0,
            batches: 2,
            batch_time: SimDuration::from_secs(15),
            confidence: Confidence::Ninety,
        })
        .with_seed(seed)
}

#[test]
fn every_algorithm_audits_clean_on_a_contended_run() {
    for algo in CcAlgorithm::ALL {
        let (report, audit) = run_with_audit(contended(algo, 10, 25, 0xA0D17)).unwrap();
        assert!(report.commits > 0, "{algo} committed nothing");
        assert!(audit.run_ended, "{algo}: auditor missed the end of the run");
        assert!(
            audit.is_clean(),
            "{algo} violated invariants:\n{}",
            audit.render()
        );
    }
}

#[test]
fn injected_lock_leak_is_caught_with_context() {
    let mut sim = Simulator::new(contended(CcAlgorithm::Blocking, 5, 15, 7)).unwrap();
    let handle = attach(&mut sim);
    sim.inject_lock_leak();
    sim.run_to_completion()
        .expect("run completes within budget");
    let audit = handle.report();
    assert!(
        !audit.is_clean(),
        "auditor failed to notice the leaked locks"
    );
    assert!(
        audit
            .violations
            .iter()
            .any(|v| v.message.contains("LocksReleased") || v.message.contains("leaked lock")),
        "violations never name the missing release:\n{}",
        audit.render()
    );
    let with_context = audit
        .violations
        .iter()
        .find(|v| !v.context.is_empty())
        .expect("at least one violation carries trace context");
    assert!(
        with_context.context.contains("commit"),
        "context should show the commit that leaked: {}",
        with_context.context
    );
}

#[test]
fn audited_sweep_replays_identically_across_thread_counts() {
    let mut spec = catalog::exp3();
    spec.mpls = vec![5];
    let opts = |threads| RunOptions {
        fidelity: Fidelity::Quick,
        base_seed: 0xCC85,
        threads,
        replications: 1,
        audit: true,
        retry: RetryPolicy::none(),
        event_pool: None,
        workers: 1,
    };
    let one = run_experiment(&spec, &opts(1)).expect("sweep completes");
    let four = run_experiment(&spec, &opts(4)).expect("sweep completes");
    assert!(one.audit_failures.is_empty(), "{:?}", one.audit_failures);
    assert!(four.audit_failures.is_empty(), "{:?}", four.audit_failures);
    assert_eq!(json::to_json(&one), json::to_json(&four));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Immediate-restart and optimistic runs never emit a `Deadlock` event
    /// — neither algorithm ever waits, so no cycle can form — and blocking
    /// runs never emit an optimistic `ValidationFailure` or a timestamp
    /// rejection, whatever the seed or load level.
    #[test]
    fn restart_based_algorithms_never_deadlock(
        seed in any::<u64>(),
        mpl in 1u32..30,
        num_terms in 2u32..30,
    ) {
        for algo in [CcAlgorithm::ImmediateRestart, CcAlgorithm::Optimistic] {
            let cfg = contended(algo, mpl, num_terms, seed);
            let (_, trace) = run_with_trace(cfg, 1_000_000).expect("valid config");
            prop_assert_eq!(trace.dropped(), 0, "{} trace overflowed", algo);
            for (at, e) in trace.events() {
                prop_assert!(
                    !matches!(e, TraceEvent::Deadlock { .. }),
                    "{} emitted a deadlock at {}: {}",
                    algo, at, e
                );
            }
        }
        let cfg = contended(CcAlgorithm::Blocking, mpl, num_terms, seed);
        let (_, trace) = run_with_trace(cfg, 1_000_000).expect("valid config");
        prop_assert_eq!(trace.dropped(), 0, "blocking trace overflowed");
        for (at, e) in trace.events() {
            prop_assert!(
                !matches!(
                    e,
                    TraceEvent::ValidationFailure(..) | TraceEvent::TsRejected(..)
                ),
                "blocking emitted a validation-family event at {}: {}",
                at, e
            );
        }
    }

    /// The full auditor stays clean on random configurations of the three
    /// paper algorithms — the per-event legality table, lock ledger, and
    /// flow-balance identities all hold off the beaten path.
    #[test]
    fn paper_trio_audits_clean_on_random_configs(
        seed in any::<u64>(),
        mpl in 1u32..25,
        num_terms in 2u32..25,
    ) {
        for algo in CcAlgorithm::PAPER_TRIO {
            let (_, audit) = run_with_audit(contended(algo, mpl, num_terms, seed))
                .expect("valid config");
            prop_assert!(
                audit.is_clean(),
                "{} violated invariants:\n{}",
                algo,
                audit.render()
            );
        }
    }
}
