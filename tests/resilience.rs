//! End-to-end resilience guarantees of the sweep supervisor:
//!
//! * an injected worker panic or budget exhaustion becomes a typed hole in
//!   the result while the rest of the sweep completes untouched;
//! * the one-shot quick retry fills the hole and keeps the failure on
//!   record;
//! * a checkpointed sweep interrupted after K completed runs resumes to a
//!   byte-identical final JSON, for K at the start, middle, and end of the
//!   grid — and likewise after a chaos-injected failure;
//! * a manifest written by a different sweep is rejected, not silently
//!   merged.
//!
//! Fault injection comes from the `chaos` feature of `ccsim-experiments`
//! (enabled for this test target in the workspace `Cargo.toml`).

use std::path::PathBuf;

use ccsim_experiments::{
    catalog, json, run_experiment, run_experiment_supervised, ChaosKind, ChaosPoint,
    ExperimentSpec, FailureKind, Fidelity, RetryOutcome, RetryPolicy, RunOptions, SweepControl,
    SweepError,
};

fn tiny_spec() -> ExperimentSpec {
    let mut spec = catalog::exp3();
    spec.mpls = vec![5, 25]; // 3 series x 2 mpls = 6 runs
    spec
}

fn tiny_opts() -> RunOptions {
    RunOptions {
        fidelity: Fidelity::Quick,
        base_seed: 42,
        threads: 0,
        replications: 1,
        audit: false,
        retry: RetryPolicy::none(),
        event_pool: None,
        workers: 1,
    }
}

/// A per-test scratch file under the system temp dir; removed on drop so
/// reruns start fresh even after a failed assertion.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("ccsim-resilience-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn chaos_panic_is_isolated_to_one_hole() {
    let spec = tiny_spec();
    let clean = run_experiment(&spec, &tiny_opts()).expect("clean sweep");
    let ctl = SweepControl {
        chaos: Some(ChaosPoint {
            series_ix: 1,
            mpl: 25,
            rep: 0,
            kind: ChaosKind::Panic,
            fail_attempts: 1,
        }),
        ..SweepControl::default()
    };
    let result = run_experiment_supervised(&spec, &tiny_opts(), &ctl).expect("sweep survives");
    assert!(!result.is_clean());
    assert!(!result.interrupted);
    assert_eq!(result.failures.len(), 1);
    let f = &result.failures[0];
    assert_eq!(f.kind, FailureKind::Panic);
    assert_eq!(
        (f.series.as_str(), f.mpl, f.rep),
        ("immediate-restart", 25, 0)
    );
    assert!(f.detail.contains("injected panic"), "detail: {}", f.detail);
    assert_eq!(f.retry, RetryOutcome::NotAttempted);
    assert_eq!(result.holes(), vec![("immediate-restart".to_string(), 25)]);
    // Every other point is bit-identical to the clean sweep.
    assert_eq!(result.points.len(), clean.points.len() - 1);
    for p in &result.points {
        let c = clean
            .points
            .iter()
            .find(|c| c.series == p.series && c.mpl == p.mpl)
            .expect("clean sweep has the point");
        assert_eq!(p.report, c.report, "{}@{} perturbed", p.series, p.mpl);
    }
}

#[test]
fn chaos_budget_exhaustion_is_a_typed_budget_hole() {
    let spec = tiny_spec();
    let ctl = SweepControl {
        chaos: Some(ChaosPoint {
            series_ix: 0,
            mpl: 5,
            rep: 0,
            kind: ChaosKind::BudgetExhaust,
            fail_attempts: 1,
        }),
        ..SweepControl::default()
    };
    let result = run_experiment_supervised(&spec, &tiny_opts(), &ctl).expect("sweep survives");
    assert_eq!(result.failures.len(), 1);
    let f = &result.failures[0];
    assert_eq!(f.kind, FailureKind::Budget);
    assert_eq!((f.series.as_str(), f.mpl), ("blocking", 5));
    assert!(
        f.detail.contains("budget"),
        "detail should describe the exhausted budget: {}",
        f.detail
    );
    assert_eq!(result.points.len(), spec.num_runs() - 1);
}

#[test]
fn retry_quick_fills_the_hole_and_keeps_the_failure_on_record() {
    let spec = tiny_spec();
    let ctl = SweepControl {
        chaos: Some(ChaosPoint {
            series_ix: 2,
            mpl: 5,
            rep: 0,
            kind: ChaosKind::Panic,
            fail_attempts: 1,
        }),
        ..SweepControl::default()
    };
    let opts = RunOptions {
        retry: RetryPolicy::quick_once(),
        ..tiny_opts()
    };
    let result = run_experiment_supervised(&spec, &opts, &ctl).expect("sweep survives");
    // No hole: the grid is complete...
    assert_eq!(result.points.len(), spec.num_runs());
    assert!(result.holes().is_empty());
    // ...but the failure is still recorded, marked as retried.
    assert_eq!(result.failures.len(), 1);
    assert_eq!(
        result.failures[0].retry,
        RetryOutcome::Degraded { attempts: 2 }
    );
    assert!(!result.is_clean());
}

/// Interrupt a checkpointed sweep after `k` completed runs, resume it, and
/// require the final JSON to be byte-identical to an uninterrupted sweep.
fn assert_resume_identical(k: u64, scratch_name: &str) {
    let spec = tiny_spec();
    let opts = RunOptions {
        threads: 1, // deterministic completion order for the stop point
        ..tiny_opts()
    };
    let baseline = json::to_json(&run_experiment(&spec, &opts).expect("clean sweep"));

    let scratch = Scratch::new(scratch_name);
    let partial = run_experiment_supervised(
        &spec,
        &opts,
        &SweepControl {
            checkpoint: Some(&scratch.0),
            stop_after: Some(k),
            ..SweepControl::default()
        },
    )
    .expect("interrupted sweep still returns");
    assert!(partial.interrupted);
    // The worker may already hold one dequeued job when the stop lands, so
    // up to k+1 runs can complete; the rest of the grid must be abandoned.
    assert!(
        (partial.points.len() as u64) <= k + 1,
        "stop after {k} let {} runs finish",
        partial.points.len()
    );
    if k + 1 < spec.num_runs() as u64 {
        assert!(
            (partial.points.len() as u64) < spec.num_runs() as u64,
            "stop after {k} should leave work undone"
        );
    }
    assert!(scratch.0.exists(), "manifest was never written");

    let resumed = run_experiment_supervised(
        &spec,
        &opts,
        &SweepControl {
            checkpoint: Some(&scratch.0),
            resume: true,
            ..SweepControl::default()
        },
    )
    .expect("resumed sweep completes");
    assert!(resumed.is_clean());
    assert_eq!(
        json::to_json(&resumed),
        baseline,
        "resume after {k} runs diverged from the uninterrupted sweep"
    );
}

#[test]
fn resume_after_first_run_is_byte_identical() {
    assert_resume_identical(1, "resume-start.manifest.jsonl");
}

#[test]
fn resume_mid_grid_is_byte_identical() {
    assert_resume_identical(3, "resume-mid.manifest.jsonl");
}

#[test]
fn resume_before_last_run_is_byte_identical() {
    assert_resume_identical(5, "resume-end.manifest.jsonl");
}

#[test]
fn resume_after_chaos_panic_converges_on_the_clean_result() {
    let spec = tiny_spec();
    let opts = tiny_opts();
    let baseline = json::to_json(&run_experiment(&spec, &opts).expect("clean sweep"));

    let scratch = Scratch::new("resume-chaos.manifest.jsonl");
    let broken = run_experiment_supervised(
        &spec,
        &opts,
        &SweepControl {
            checkpoint: Some(&scratch.0),
            chaos: Some(ChaosPoint {
                series_ix: 0,
                mpl: 25,
                rep: 0,
                kind: ChaosKind::Panic,
                fail_attempts: 1,
            }),
            ..SweepControl::default()
        },
    )
    .expect("sweep survives the panic");
    assert_eq!(broken.failures.len(), 1);
    assert_eq!(broken.points.len(), spec.num_runs() - 1);

    // Failed runs are never journaled, so resuming (with the fault gone,
    // as when CCSIM_CHAOS is unset on the retry) re-runs exactly the
    // failed point and lands on the clean result.
    let resumed = run_experiment_supervised(
        &spec,
        &opts,
        &SweepControl {
            checkpoint: Some(&scratch.0),
            resume: true,
            ..SweepControl::default()
        },
    )
    .expect("resumed sweep completes");
    assert!(resumed.is_clean());
    assert_eq!(json::to_json(&resumed), baseline);
}

#[test]
fn foreign_manifest_is_rejected_on_resume() {
    let spec = tiny_spec();
    let scratch = Scratch::new("mismatch.manifest.jsonl");
    run_experiment_supervised(
        &spec,
        &tiny_opts(),
        &SweepControl {
            checkpoint: Some(&scratch.0),
            ..SweepControl::default()
        },
    )
    .expect("checkpointed sweep completes");

    let other_seed = RunOptions {
        base_seed: 43,
        ..tiny_opts()
    };
    let err = run_experiment_supervised(
        &spec,
        &other_seed,
        &SweepControl {
            checkpoint: Some(&scratch.0),
            resume: true,
            ..SweepControl::default()
        },
    )
    .expect_err("a manifest from another sweep must not be merged");
    assert!(
        matches!(err, SweepError::Manifest(_)),
        "unexpected error: {err}"
    );
    assert!(err.to_string().contains("seed") || err.to_string().contains("manifest"));
}

#[test]
fn retry_recovers_on_the_attempt_after_chaos_stops_failing() {
    // Chaos fails the first 2 attempts; a 3-attempt policy recovers on
    // attempt 3 with the full-fidelity report — the result is bit-identical
    // to a clean sweep, with the failure (and its attempt count) on record.
    let spec = tiny_spec();
    let clean = run_experiment(&spec, &tiny_opts()).expect("clean sweep");
    let opts = RunOptions {
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 1, // keep the test fast; determinism is tested elsewhere
            max_backoff_ms: 2,
            jitter_seed: 9,
            degrade_to_quick: false,
        },
        ..tiny_opts()
    };
    let ctl = SweepControl {
        chaos: Some(ChaosPoint {
            series_ix: 1,
            mpl: 5,
            rep: 0,
            kind: ChaosKind::Panic,
            fail_attempts: 2,
        }),
        ..SweepControl::default()
    };
    let result = run_experiment_supervised(&spec, &opts, &ctl).expect("sweep survives");
    assert!(result.holes().is_empty());
    assert_eq!(result.failures.len(), 1);
    assert_eq!(
        result.failures[0].retry,
        RetryOutcome::Recovered { attempts: 3 }
    );
    assert_eq!(result.failures[0].kind, FailureKind::Panic);
    assert!(result.fully_measured(), "a recovered sweep is canonical");
    // Recovery is invisible in the measurements: every point matches the
    // clean sweep bit for bit.
    assert_eq!(result.points.len(), clean.points.len());
    for (p, c) in result.points.iter().zip(clean.points.iter()) {
        assert_eq!(
            p.report, c.report,
            "{}@{} perturbed by retry",
            p.series, p.mpl
        );
    }
}

#[test]
fn retry_attempts_are_capped_by_the_policy() {
    // Chaos outlasts the policy: 2 attempts allowed, first 5 fail.
    let spec = tiny_spec();
    let opts = RunOptions {
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff_ms: 1,
            max_backoff_ms: 2,
            jitter_seed: 9,
            degrade_to_quick: false,
        },
        ..tiny_opts()
    };
    let ctl = SweepControl {
        chaos: Some(ChaosPoint {
            series_ix: 0,
            mpl: 25,
            rep: 0,
            kind: ChaosKind::Panic,
            fail_attempts: 5,
        }),
        ..SweepControl::default()
    };
    let result = run_experiment_supervised(&spec, &opts, &ctl).expect("sweep survives");
    assert_eq!(result.failures.len(), 1);
    assert_eq!(
        result.failures[0].retry,
        RetryOutcome::Failed { attempts: 2 }
    );
    assert_eq!(result.holes(), vec![("blocking".to_string(), 25)]);
    assert!(!result.fully_measured());
}

#[test]
fn recovered_points_are_journaled_so_resume_skips_them() {
    // A chaos-hit point that recovers on attempt 2 is checkpointed like a
    // clean run; resuming the manifest re-runs nothing and the output is
    // byte-identical to an uninterrupted, fault-free sweep.
    let spec = tiny_spec();
    let opts = RunOptions {
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            jitter_seed: 0,
            degrade_to_quick: false,
        },
        ..tiny_opts()
    };
    let clean = run_experiment(&spec, &tiny_opts()).expect("clean sweep");
    let baseline = json::to_json(&clean);
    let scratch = Scratch::new("recovered-journal.manifest.jsonl");
    let faulted = run_experiment_supervised(
        &spec,
        &opts,
        &SweepControl {
            checkpoint: Some(&scratch.0),
            chaos: Some(ChaosPoint {
                series_ix: 2,
                mpl: 25,
                rep: 0,
                kind: ChaosKind::BudgetExhaust,
                fail_attempts: 1,
            }),
            ..SweepControl::default()
        },
    )
    .expect("sweep survives");
    assert_eq!(
        faulted.failures[0].retry,
        RetryOutcome::Recovered { attempts: 2 }
    );
    // The failure stays on record (so the JSON differs by exactly that),
    // but every measurement matches the fault-free sweep bit for bit.
    assert_eq!(faulted.points.len(), clean.points.len());
    for (p, c) in faulted.points.iter().zip(clean.points.iter()) {
        assert_eq!(p.report, c.report, "{}@{} perturbed", p.series, p.mpl);
    }

    let resumed = run_experiment_supervised(
        &spec,
        &opts,
        &SweepControl {
            checkpoint: Some(&scratch.0),
            resume: true,
            ..SweepControl::default()
        },
    )
    .expect("resumed sweep completes");
    assert!(
        resumed.is_clean(),
        "every run was journaled; nothing re-ran"
    );
    assert_eq!(json::to_json(&resumed), baseline);
}

#[test]
fn truncated_manifest_tail_resumes_with_a_warning() {
    let spec = tiny_spec();
    let opts = RunOptions {
        threads: 1,
        ..tiny_opts()
    };
    let baseline = json::to_json(&run_experiment(&spec, &opts).expect("clean sweep"));
    let scratch = Scratch::new("torn-tail.manifest.jsonl");
    run_experiment_supervised(
        &spec,
        &opts,
        &SweepControl {
            checkpoint: Some(&scratch.0),
            ..SweepControl::default()
        },
    )
    .expect("checkpointed sweep completes");
    // Simulate a crash mid-append: cut the final journal line short.
    let text = std::fs::read_to_string(&scratch.0).expect("read manifest");
    let cut = text.trim_end().len() - 30;
    std::fs::write(&scratch.0, &text[..cut]).expect("truncate");

    let resumed = run_experiment_supervised(
        &spec,
        &opts,
        &SweepControl {
            checkpoint: Some(&scratch.0),
            resume: true,
            ..SweepControl::default()
        },
    )
    .expect("tolerant resume");
    assert_eq!(resumed.warnings.len(), 1, "{:?}", resumed.warnings);
    assert!(resumed.warnings[0].contains("truncated final manifest entry"));
    assert!(resumed.is_clean());
    assert_eq!(
        json::to_json(&resumed),
        baseline,
        "the re-run point must replace the torn record exactly"
    );
}
