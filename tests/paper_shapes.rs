//! Integration tests asserting the paper's qualitative findings at reduced
//! (smoke) fidelity. The full-fidelity reproduction lives in the `repro`
//! binary and EXPERIMENTS.md; these tests keep the headline shapes from
//! regressing.

use ccsim_core::{run, CcAlgorithm, Confidence, MetricsConfig, Params, ResourceSpec, SimConfig};
use ccsim_des::SimDuration;

fn metrics() -> MetricsConfig {
    MetricsConfig {
        warmup_batches: 1,
        batches: 6,
        batch_time: SimDuration::from_secs(40),
        confidence: Confidence::Ninety,
    }
}

fn tps(algo: CcAlgorithm, params: Params) -> f64 {
    let cfg = SimConfig::new(algo)
        .with_params(params)
        .with_metrics(metrics())
        .with_seed(0x5114_BE57);
    run(cfg).unwrap().throughput.mean
}

/// Experiment 2 (Figure 5): under infinite resources the optimistic
/// algorithm's throughput keeps climbing with mpl while blocking thrashes.
#[test]
fn fig5_blocking_thrashes_optimistic_climbs_under_infinite_resources() {
    let inf = |mpl| {
        Params::paper_baseline()
            .with_mpl(mpl)
            .with_resources(ResourceSpec::Infinite)
    };
    let b_50 = tps(CcAlgorithm::Blocking, inf(50));
    let b_200 = tps(CcAlgorithm::Blocking, inf(200));
    assert!(
        b_200 < b_50 * 0.8,
        "blocking should thrash: {b_50:.1} @50 vs {b_200:.1} @200"
    );
    let o_50 = tps(CcAlgorithm::Optimistic, inf(50));
    let o_200 = tps(CcAlgorithm::Optimistic, inf(200));
    assert!(
        o_200 > o_50 * 1.2,
        "optimistic should keep climbing: {o_50:.1} @50 vs {o_200:.1} @200"
    );
    assert!(
        o_200 > b_200 * 1.5,
        "optimistic should dominate blocking at mpl 200 ({o_200:.1} vs {b_200:.1})"
    );
}

/// Experiment 3 (Figure 8): with 1 CPU / 2 disks, blocking attains the best
/// global throughput and immediate-restart wins at mpl=200.
#[test]
fn fig8_blocking_wins_under_scarce_resources() {
    let base = |mpl| Params::paper_baseline().with_mpl(mpl);
    let b_peak = tps(CcAlgorithm::Blocking, base(25));
    let o_peak = [10, 25]
        .map(|m| tps(CcAlgorithm::Optimistic, base(m)))
        .into_iter()
        .fold(f64::MIN, f64::max);
    assert!(
        b_peak > o_peak,
        "blocking's peak ({b_peak:.2}) should beat optimistic's ({o_peak:.2})"
    );
    // The paper's mpl=200 ranking (immediate-restart "somewhat better" than
    // blocking) is a small effect; at smoke fidelity we only require
    // immediate-restart to be competitive with blocking and clearly ahead
    // of optimistic, whose high-mpl collapse is the robust part of Fig. 8.
    let b_200 = tps(CcAlgorithm::Blocking, base(200));
    let ir_200 = tps(CcAlgorithm::ImmediateRestart, base(200));
    let o_200 = tps(CcAlgorithm::Optimistic, base(200));
    assert!(
        ir_200 > b_200 * 0.85,
        "immediate-restart should be competitive at mpl 200 ({ir_200:.2} vs {b_200:.2})"
    );
    assert!(
        ir_200 > o_200,
        "immediate-restart should beat optimistic at mpl 200 ({ir_200:.2} vs {o_200:.2})"
    );
}

/// Experiment 4 (Figure 14): with 25 CPUs / 50 disks (utilizations in the
/// 30% range) the optimistic algorithm's peak catches up with blocking's.
#[test]
fn fig14_optimistic_catches_blocking_with_abundant_resources() {
    let big = |mpl| {
        Params::paper_baseline()
            .with_mpl(mpl)
            .with_resources(ResourceSpec::TWENTY_FIVE_CPUS_FIFTY_DISKS)
    };
    let b_peak = [50, 75]
        .map(|m| tps(CcAlgorithm::Blocking, big(m)))
        .into_iter()
        .fold(f64::MIN, f64::max);
    let o_peak = [100, 200]
        .map(|m| tps(CcAlgorithm::Optimistic, big(m)))
        .into_iter()
        .fold(f64::MIN, f64::max);
    assert!(
        o_peak > b_peak * 0.95,
        "optimistic peak ({o_peak:.1}) should at least match blocking's ({b_peak:.1})"
    );
}

/// Experiment 5 (Figures 16 vs 20): the internal-think crossover — blocking
/// wins at 1 s internal think, optimistic wins at 10 s.
#[test]
fn exp5_interactive_crossover() {
    let think = |int_s, ext_s, mpl| {
        Params::paper_baseline()
            .with_mpl(mpl)
            .with_think_times(SimDuration::from_secs(ext_s), SimDuration::from_secs(int_s))
    };
    let b_short = tps(CcAlgorithm::Blocking, think(1, 3, 25));
    let o_short = tps(CcAlgorithm::Optimistic, think(1, 3, 25));
    assert!(
        b_short > o_short * 0.95,
        "short thinks: blocking {b_short:.2} vs optimistic {o_short:.2}"
    );
    let b_long = [50, 100]
        .map(|m| tps(CcAlgorithm::Blocking, think(10, 21, m)))
        .into_iter()
        .fold(f64::MIN, f64::max);
    let o_long = [50, 100]
        .map(|m| tps(CcAlgorithm::Optimistic, think(10, 21, m)))
        .into_iter()
        .fold(f64::MIN, f64::max);
    assert!(
        o_long > b_long,
        "long thinks should flip the winner: optimistic {o_long:.2} vs blocking {b_long:.2}"
    );
}

/// Figure 6: blocking's thrashing is caused by blocking (waits), not by
/// deadlock restarts — block ratio explodes while its restart ratio stays
/// far below the restart-based algorithms'.
#[test]
fn fig6_blocking_thrashes_by_waiting_not_restarting() {
    let inf = Params::paper_baseline()
        .with_mpl(200)
        .with_resources(ResourceSpec::Infinite);
    let b = run(SimConfig::new(CcAlgorithm::Blocking)
        .with_params(inf.clone())
        .with_metrics(metrics()))
    .unwrap();
    let o = run(SimConfig::new(CcAlgorithm::Optimistic)
        .with_params(inf)
        .with_metrics(metrics()))
    .unwrap();
    assert!(
        b.block_ratio > 1.0,
        "blocking at mpl 200 should block heavily (ratio {})",
        b.block_ratio
    );
    assert!(
        b.restart_ratio < o.restart_ratio,
        "blocking restarts ({}) should stay below optimistic's ({})",
        b.restart_ratio,
        o.restart_ratio
    );
}

/// Figure 9's structure: for the optimistic algorithm the gap between total
/// and useful disk utilization widens as mpl grows (more wasted work).
#[test]
fn fig9_wasted_work_grows_with_mpl_for_optimistic() {
    let report = |mpl| {
        run(SimConfig::new(CcAlgorithm::Optimistic)
            .with_params(Params::paper_baseline().with_mpl(mpl))
            .with_metrics(metrics()))
        .unwrap()
    };
    let lo = report(5);
    let hi = report(100);
    let gap_lo = lo.disk_util_total.mean - lo.disk_util_useful.mean;
    let gap_hi = hi.disk_util_total.mean - hi.disk_util_useful.mean;
    assert!(
        gap_hi > gap_lo,
        "wasted-disk gap should widen: {gap_lo:.3} @5 vs {gap_hi:.3} @100"
    );
}
