//! Cross-crate integration tests: physical invariants the closed queuing
//! model must satisfy regardless of concurrency control algorithm.

use ccsim_core::{run, CcAlgorithm, Confidence, MetricsConfig, Params, ResourceSpec, SimConfig};
use ccsim_des::SimDuration;

fn quick() -> MetricsConfig {
    MetricsConfig {
        warmup_batches: 1,
        batches: 5,
        batch_time: SimDuration::from_secs(30),
        confidence: Confidence::Ninety,
    }
}

fn cfg(algo: CcAlgorithm, params: Params) -> SimConfig {
    SimConfig::new(algo)
        .with_params(params)
        .with_metrics(quick())
        .with_seed(0xBEEF)
}

/// Little's-law style bound: a closed system with N terminals and mean
/// external think Z cannot commit more than N/Z transactions per second.
#[test]
fn throughput_bounded_by_terminal_population() {
    for algo in CcAlgorithm::PAPER_TRIO {
        let params = Params::low_conflict()
            .with_mpl(200)
            .with_resources(ResourceSpec::Infinite);
        let bound = f64::from(params.num_terms) / params.ext_think_time.as_secs_f64();
        let r = run(cfg(algo, params)).unwrap();
        assert!(
            r.throughput.mean < bound,
            "{algo}: {} tps exceeds closed-system bound {bound}",
            r.throughput.mean
        );
    }
}

/// The disks can serve at most `num_disks` seconds of I/O per second, and
/// each commit consumes `(reads + writes) * obj_io` of it.
#[test]
fn throughput_bounded_by_disk_capacity() {
    for algo in CcAlgorithm::PAPER_TRIO {
        let params = Params::paper_baseline().with_mpl(50);
        let per_commit_io = params.expected_io_demand().as_secs_f64();
        let bound = 2.0 / per_commit_io * 1.1; // 2 disks, 10% slack for size variance
        let r = run(cfg(algo, params)).unwrap();
        assert!(
            r.throughput.mean < bound,
            "{algo}: {} tps exceeds disk bound {bound:.2}",
            r.throughput.mean
        );
    }
}

/// Utilizations are probabilities: within [0, 1], and useful <= total.
#[test]
fn utilizations_are_well_formed() {
    for algo in CcAlgorithm::ALL {
        let r = run(cfg(algo, Params::paper_baseline().with_mpl(75))).unwrap();
        for (name, v) in [
            ("disk total", r.disk_util_total.mean),
            ("disk useful", r.disk_util_useful.mean),
            ("cpu total", r.cpu_util_total.mean),
            ("cpu useful", r.cpu_util_useful.mean),
        ] {
            assert!((0.0..=1.0 + 1e-9).contains(&v), "{algo}: {name} = {v}");
        }
        // Useful time is credited at commit, so work performed in one
        // batch can be credited in the next; allow that boundary smear.
        assert!(
            r.disk_util_useful.mean <= r.disk_util_total.mean + 0.02,
            "{algo}: useful disk {} exceeds total {}",
            r.disk_util_useful.mean,
            r.disk_util_total.mean
        );
        assert!(
            r.cpu_util_useful.mean <= r.cpu_util_total.mean + 0.02,
            "{algo}: useful cpu {} exceeds total {}",
            r.cpu_util_useful.mean,
            r.cpu_util_total.mean
        );
    }
}

/// No transaction can finish faster than its minimal service demand
/// (min_size reads, no writes, no queueing): min_size * (io + cpu).
#[test]
fn response_times_respect_service_floor() {
    for algo in CcAlgorithm::PAPER_TRIO {
        let params = Params::paper_baseline()
            .with_mpl(5)
            .with_resources(ResourceSpec::Infinite);
        let floor =
            params.min_size as f64 * (params.obj_io.as_secs_f64() + params.obj_cpu.as_secs_f64());
        let r = run(cfg(algo, params)).unwrap();
        assert!(
            r.response_time_mean > floor,
            "{algo}: mean response {} below service floor {floor}",
            r.response_time_mean
        );
    }
}

/// With a single active transaction there are no conflicts at all: no
/// blocks, no restarts, and useful == total utilization.
#[test]
fn mpl_one_is_conflict_free() {
    for algo in CcAlgorithm::ALL {
        let r = run(cfg(algo, Params::paper_baseline().with_mpl(1))).unwrap();
        assert_eq!(r.blocks, 0, "{algo} blocked at mpl=1");
        assert_eq!(r.restarts, 0, "{algo} restarted at mpl=1");
        assert_eq!(r.deadlocks, 0, "{algo} deadlocked at mpl=1");
        // Useful time is credited at commit while total accrues
        // continuously, so batch-boundary smear leaves a small residual gap
        // even with zero wasted work.
        assert!(
            (r.disk_util_total.mean - r.disk_util_useful.mean).abs() < 0.02,
            "{algo}: wasted work without conflicts (total {} vs useful {})",
            r.disk_util_total.mean,
            r.disk_util_useful.mean
        );
    }
}

/// A read-only workload (write_prob = 0) has no write-write or read-write
/// conflicts, so no algorithm should ever block or restart.
#[test]
fn read_only_workload_is_conflict_free() {
    for algo in CcAlgorithm::ALL {
        let mut params = Params::paper_baseline().with_mpl(100);
        params.write_prob = 0.0;
        let r = run(cfg(algo, params)).unwrap();
        assert_eq!(r.restarts, 0, "{algo} restarted in a read-only workload");
        assert_eq!(r.blocks, 0, "{algo} blocked in a read-only workload");
        assert!(r.commits > 100);
    }
}

/// All-write transactions (write_prob = 1) on a tiny database: the
/// blocking-based and prioritized-restart algorithms must still make
/// progress. No-waiting locking is *expected* to collapse here — every pair
/// of overlapping readers kills each other's upgrades, the classic
/// no-waiting livelock the restart-delay literature warns about — so for it
/// we only assert it stays far behind blocking.
#[test]
fn write_heavy_small_db_makes_progress() {
    let mk = || {
        let mut params = Params::paper_baseline().with_mpl(20);
        params.db_size = 100;
        params.write_prob = 1.0;
        params
    };
    let blocking = run(cfg(CcAlgorithm::Blocking, mk())).unwrap();
    for algo in [
        CcAlgorithm::Blocking,
        CcAlgorithm::ImmediateRestart,
        CcAlgorithm::Optimistic,
        CcAlgorithm::WaitDie,
        CcAlgorithm::WoundWait,
        CcAlgorithm::StaticLocking,
    ] {
        let r = run(cfg(algo, mk())).unwrap();
        assert!(
            r.commits > 20,
            "{algo} nearly livelocked: {} commits",
            r.commits
        );
    }
    let nw = run(cfg(CcAlgorithm::NoWaiting, mk())).unwrap();
    assert!(
        nw.commits < blocking.commits,
        "no-waiting ({}) should collapse below blocking ({}) under upgrade storms",
        nw.commits,
        blocking.commits
    );
}

/// Hotspot skew concentrates conflicts: at the same multiprogramming level
/// an 80/20 workload must block substantially more than the uniform one.
#[test]
fn hotspot_skew_raises_contention() {
    use ccsim_core::AccessPattern;
    let uniform = run(cfg(
        CcAlgorithm::Blocking,
        Params::paper_baseline().with_mpl(50),
    ))
    .unwrap();
    let mut params = Params::paper_baseline().with_mpl(50);
    params.access = AccessPattern::Hotspot {
        data_frac: 0.2,
        access_frac: 0.8,
    };
    let hot = run(cfg(CcAlgorithm::Blocking, params)).unwrap();
    assert!(
        hot.block_ratio > uniform.block_ratio * 2.0,
        "hotspot blocks/commit {} should dwarf uniform {}",
        hot.block_ratio,
        uniform.block_ratio
    );
    assert!(
        hot.throughput.mean < uniform.throughput.mean,
        "skew should cost throughput"
    );
}

/// The observed average multiprogramming level respects the configured cap
/// and reacts to it.
#[test]
fn actual_mpl_tracks_configured_mpl() {
    let lo = run(cfg(
        CcAlgorithm::Blocking,
        Params::paper_baseline().with_mpl(5),
    ))
    .unwrap();
    let hi = run(cfg(
        CcAlgorithm::Blocking,
        Params::paper_baseline().with_mpl(50),
    ))
    .unwrap();
    assert!(lo.avg_active <= 5.0 + 1e-9);
    assert!(hi.avg_active <= 50.0 + 1e-9);
    assert!(
        hi.avg_active > lo.avg_active,
        "raising mpl should raise the active population ({} vs {})",
        hi.avg_active,
        lo.avg_active
    );
}

/// Infinite resources dominate any finite configuration for the same
/// workload and algorithm.
#[test]
fn infinite_resources_dominate_finite() {
    for algo in CcAlgorithm::PAPER_TRIO {
        let fin = run(cfg(algo, Params::paper_baseline().with_mpl(25))).unwrap();
        let inf = run(cfg(
            algo,
            Params::paper_baseline()
                .with_mpl(25)
                .with_resources(ResourceSpec::Infinite),
        ))
        .unwrap();
        assert!(
            inf.throughput.mean > fin.throughput.mean,
            "{algo}: infinite ({}) should beat 1x2 ({})",
            inf.throughput.mean,
            fin.throughput.mean
        );
    }
}

/// Doubling the hardware must not reduce throughput (same workload).
#[test]
fn more_hardware_never_hurts() {
    for algo in CcAlgorithm::PAPER_TRIO {
        let small = run(cfg(algo, Params::paper_baseline().with_mpl(50))).unwrap();
        let big = run(cfg(
            algo,
            Params::paper_baseline()
                .with_mpl(50)
                .with_resources(ResourceSpec::FIVE_CPUS_TEN_DISKS),
        ))
        .unwrap();
        assert!(
            big.throughput.mean >= small.throughput.mean * 0.98,
            "{algo}: 5x10 ({}) worse than 1x2 ({})",
            big.throughput.mean,
            small.throughput.mean
        );
    }
}
