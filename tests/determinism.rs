//! Cross-crate reproducibility: identical configurations with identical
//! seeds must replay bit-for-bit through the whole stack, including the
//! experiment harness and its JSON serialization.

use ccsim_core::{
    run, run_collecting, run_with_trace, CcAlgorithm, Confidence, MetricsConfig, Params, RunBudget,
    SimConfig,
};
use ccsim_des::SimDuration;
use ccsim_experiments::{catalog, json, run_experiment, Fidelity, RetryPolicy, RunOptions};

fn quick() -> MetricsConfig {
    MetricsConfig {
        warmup_batches: 1,
        batches: 4,
        batch_time: SimDuration::from_secs(25),
        confidence: Confidence::Ninety,
    }
}

#[test]
fn simulation_reports_replay_exactly() {
    for algo in CcAlgorithm::ALL {
        let mk = || {
            SimConfig::new(algo)
                .with_params(Params::paper_baseline().with_mpl(30))
                .with_metrics(quick())
                .with_seed(0xD5EED)
        };
        let a = run(mk()).unwrap();
        let b = run(mk()).unwrap();
        assert_eq!(a, b, "{algo} replay diverged");
    }
}

#[test]
fn experiment_results_and_json_replay_exactly() {
    let mut spec = catalog::exp3();
    spec.mpls = vec![10];
    let opts = RunOptions {
        fidelity: Fidelity::Quick,
        base_seed: 99,
        threads: 1,
        replications: 1,
        audit: false,
        retry: RetryPolicy::none(),
        event_pool: None,
        workers: 1,
    };
    let a = run_experiment(&spec, &opts).expect("sweep completes");
    let b = run_experiment(&spec, &opts).expect("sweep completes");
    assert_eq!(json::to_json(&a), json::to_json(&b));
}

#[test]
fn trace_ring_does_not_perturb_the_run() {
    // The engine skips event emission entirely when nothing observes the
    // run; that fast path must be a pure observer effect. Attaching the
    // trace ring (exp3's resource-limited baseline, mpl 50) must leave the
    // report byte-identical to the unobserved run. The modern in-memory
    // protocols ride the same loop: their validation managers (version
    // chains, TID words, timestamp intervals) must be equally observer-
    // independent.
    for algo in CcAlgorithm::PAPER_TRIO
        .into_iter()
        .chain(CcAlgorithm::MODERN_TRIO)
    {
        let mk = || {
            SimConfig::new(algo)
                .with_params(Params::paper_baseline().with_mpl(50))
                .with_metrics(quick())
                .with_seed(0x7ACE)
        };
        let detached = run(mk()).unwrap();
        let (attached, trace) = run_with_trace(mk(), 4096).unwrap();
        assert!(
            !trace.is_empty(),
            "{algo}: trace ring attached but recorded nothing"
        );
        assert_eq!(
            detached, attached,
            "{algo}: attaching the trace ring changed the run"
        );
    }
}

#[test]
fn uncontended_elision_does_not_perturb_the_run() {
    // The idle-server fast path elides the request/dispatch calendar hop
    // but must leave the simulation itself untouched: full reports at the
    // exp1 reference point must be byte-equal with elision forced on and
    // forced off, for every paper-trio and modern-trio algorithm.
    for algo in CcAlgorithm::PAPER_TRIO
        .into_iter()
        .chain(CcAlgorithm::MODERN_TRIO)
    {
        let mk = |elide| {
            SimConfig::new(algo)
                .with_params(Params::paper_baseline().with_mpl(50))
                .with_metrics(quick())
                .with_seed(0x7ACE)
                .with_elision(elide)
        };
        let on = run(mk(true)).unwrap();
        let off = run(mk(false)).unwrap();
        assert_eq!(on, off, "{algo}: elision changed the run");
        // The fast path must also be observer-independent: attaching the
        // trace ring with elision on matches the unobserved elided run.
        let (traced, trace) = run_with_trace(mk(true), 4096).unwrap();
        assert!(!trace.is_empty());
        assert_eq!(on, traced, "{algo}: elision + trace ring diverged");
    }
}

#[test]
fn scale_point_is_deterministic_under_observation_and_calendar_choice() {
    // A budgeted slice of the `exp-scale` regime (10^8 objects, sparse
    // lock table, arena txn state, streaming quantiles), scaled down to
    // tens of thousands of in-flight transactions so the test stays
    // quick. Three pure observer/representation switches must leave the
    // salvaged window byte-identical: attaching the trace ring, eliding
    // uncontended resource hops, and the two-tier calendar itself.
    let mk = || {
        let mut params = Params::exp_scale();
        params.num_terms = 50_000;
        params.mpl = 5_000;
        SimConfig::new(CcAlgorithm::Blocking)
            .with_params(params)
            .with_metrics(MetricsConfig {
                warmup_batches: 0,
                batches: 400,
                batch_time: SimDuration::from_millis(250),
                confidence: Confidence::Ninety,
            })
            .with_seed(0x5CA1ED)
            .with_budget(RunBudget::unlimited().with_max_events(300_000))
    };
    let base = run_collecting(mk()).unwrap();
    assert!(
        base.stopped.is_some(),
        "the point should stop on its event budget"
    );
    assert!(base.report.commits > 0, "salvaged window has no commits");

    let mut traced_cfg = mk();
    traced_cfg.trace_capacity = 4096;
    let traced = run_collecting(traced_cfg).unwrap();
    assert_eq!(
        base.report, traced.report,
        "attaching the trace ring changed the scale run"
    );
    assert_eq!(base.quantiles, traced.quantiles);

    let unelided = run_collecting(mk().with_elision(false)).unwrap();
    assert_eq!(
        base.report, unelided.report,
        "elision changed the scale run"
    );
    assert_eq!(base.quantiles, unelided.quantiles);

    let heap_only = run_collecting(mk().with_two_tier_calendar(false)).unwrap();
    assert_eq!(
        base.report, heap_only.report,
        "the two-tier calendar changed the scale run"
    );
    assert_eq!(base.quantiles, heap_only.quantiles);
    assert_eq!(
        base.perf.events, heap_only.perf.events,
        "calendar tiers disagreed on the event count"
    );
    assert_eq!(
        heap_only.perf.calendar.lane_schedules, 0,
        "heap-only run still used the near lane"
    );
    assert!(
        base.perf.calendar.lane_schedules > 0,
        "two-tier run never used the near lane"
    );
}

#[test]
fn modern_scale_points_are_deterministic_under_toggles() {
    // One budget-bounded slice of the `exp-scale` regime per modern
    // protocol: the sparse-slot version chains (MVCC), TID words (Silo)
    // and timestamp intervals (TicToc) must all survive the same pure
    // observer/representation switches byte-for-byte that the blocking
    // scale point above does — trace ring on, elision off, and the
    // two-tier calendar off.
    for algo in CcAlgorithm::MODERN_TRIO {
        let mk = || {
            let mut params = Params::exp_scale();
            params.num_terms = 20_000;
            params.mpl = 2_000;
            SimConfig::new(algo)
                .with_params(params)
                .with_metrics(MetricsConfig {
                    warmup_batches: 0,
                    batches: 400,
                    batch_time: SimDuration::from_millis(250),
                    confidence: Confidence::Ninety,
                })
                .with_seed(0x5CA1ED)
                .with_budget(RunBudget::unlimited().with_max_events(200_000))
        };
        let base = run_collecting(mk()).unwrap();
        assert!(
            base.stopped.is_some(),
            "{algo}: the point should stop on its event budget"
        );
        assert!(
            base.report.commits > 0,
            "{algo}: salvaged window has no commits"
        );

        let mut traced_cfg = mk();
        traced_cfg.trace_capacity = 4096;
        let traced = run_collecting(traced_cfg).unwrap();
        assert_eq!(
            base.report, traced.report,
            "{algo}: attaching the trace ring changed the scale run"
        );
        assert_eq!(base.quantiles, traced.quantiles);

        let unelided = run_collecting(mk().with_elision(false)).unwrap();
        assert_eq!(
            base.report, unelided.report,
            "{algo}: elision changed the scale run"
        );
        assert_eq!(base.quantiles, unelided.quantiles);

        let heap_only = run_collecting(mk().with_two_tier_calendar(false)).unwrap();
        assert_eq!(
            base.report, heap_only.report,
            "{algo}: the two-tier calendar changed the scale run"
        );
        assert_eq!(base.quantiles, heap_only.quantiles);
    }
}

#[test]
fn seed_changes_results() {
    let mk = |seed| {
        SimConfig::new(CcAlgorithm::Optimistic)
            .with_params(Params::paper_baseline().with_mpl(30))
            .with_metrics(quick())
            .with_seed(seed)
    };
    let a = run(mk(1)).unwrap();
    let b = run(mk(2)).unwrap();
    assert_ne!(
        a, b,
        "different seeds should explore different sample paths"
    );
    // ... but estimate the same system: throughputs within a loose factor.
    let ratio = a.throughput.mean / b.throughput.mean;
    assert!(
        (0.5..2.0).contains(&ratio),
        "seeds disagree wildly: {} vs {}",
        a.throughput.mean,
        b.throughput.mean
    );
}

#[test]
fn batch_count_extends_rather_than_perturbs() {
    // Running more batches keeps the same sample path for the early ones:
    // the throughput estimate should move only modestly.
    let mk = |batches| {
        SimConfig::new(CcAlgorithm::Blocking)
            .with_params(Params::paper_baseline().with_mpl(25))
            .with_metrics(MetricsConfig {
                warmup_batches: 1,
                batches,
                batch_time: SimDuration::from_secs(30),
                confidence: Confidence::Ninety,
            })
            .with_seed(7)
    };
    let short = run(mk(4)).unwrap();
    let long = run(mk(8)).unwrap();
    assert_eq!(short.throughput_per_batch.len(), 4);
    assert_eq!(long.throughput_per_batch.len(), 8);
    for (i, (a, b)) in short
        .throughput_per_batch
        .iter()
        .zip(long.throughput_per_batch.iter())
        .enumerate()
    {
        assert!(
            (a - b).abs() < 1e-9,
            "batch {i} diverged between run lengths: {a} vs {b}"
        );
    }
}
