//! Multi-class workload tests: the classic *large-transaction starvation*
//! phenomenon. When a few large transactions mix with many small ones,
//! restart-oriented concurrency control punishes the large ones — their
//! long lifetimes make them perpetual conflict victims — while blocking
//! lets them through. (An extension; the paper's own workload is
//! single-class, but this is exactly the follow-up question its framework
//! was built to answer.)

use ccsim_core::{run, CcAlgorithm, Confidence, MetricsConfig, Params, SimConfig};
use ccsim_des::SimDuration;
use ccsim_workload::TxnClass;

/// 90% small transactions (the Table-2 class), 10% large 40–60 page ones.
fn mixed_params() -> Params {
    let mut p = Params::paper_baseline().with_mpl(25);
    p.primary_weight = 0.9;
    p.extra_classes.push(TxnClass {
        weight: 0.1,
        min_size: 40,
        max_size: 60,
        write_prob: 0.25,
    });
    p
}

fn metrics() -> MetricsConfig {
    MetricsConfig {
        warmup_batches: 1,
        batches: 6,
        batch_time: SimDuration::from_secs(60),
        confidence: Confidence::Ninety,
    }
}

fn report(algo: CcAlgorithm) -> ccsim_core::Report {
    run(SimConfig::new(algo)
        .with_params(mixed_params())
        .with_metrics(metrics())
        .with_seed(0x31A55))
    .unwrap()
}

#[test]
fn class_mix_matches_weights() {
    let r = report(CcAlgorithm::Blocking);
    assert_eq!(r.class_reports.len(), 2);
    let small = &r.class_reports[0];
    let large = &r.class_reports[1];
    assert!(small.commits > 0 && large.commits > 0);
    let frac = large.commits as f64 / (small.commits + large.commits) as f64;
    // Commit mix tracks the arrival mix under blocking (nobody starves).
    assert!(
        (frac - 0.1).abs() < 0.04,
        "large-class commit fraction {frac:.3}"
    );
}

#[test]
fn optimistic_starves_large_transactions() {
    let occ = report(CcAlgorithm::Optimistic);
    let small = &occ.class_reports[0];
    let large = &occ.class_reports[1];
    // A 50-page readset is ~6x more likely to overlap a committing writer,
    // and each retry takes ~6x longer — restart ratios should separate by
    // a large factor.
    assert!(
        large.restart_ratio > small.restart_ratio * 3.0,
        "large {:.2} vs small {:.2} restarts/commit",
        large.restart_ratio,
        small.restart_ratio
    );
    assert!(
        large.response_time_mean > small.response_time_mean * 2.0,
        "large {:.1}s vs small {:.1}s response",
        large.response_time_mean,
        small.response_time_mean
    );
}

#[test]
fn blocking_treats_large_transactions_more_fairly() {
    let b = report(CcAlgorithm::Blocking);
    let occ = report(CcAlgorithm::Optimistic);
    let fairness = |r: &ccsim_core::Report| {
        let s = &r.class_reports[0];
        let l = &r.class_reports[1];
        // Ratio of large-class to small-class restart ratios, guarding /0.
        (l.restart_ratio + 0.01) / (s.restart_ratio + 0.01)
    };
    assert!(
        fairness(&b) < fairness(&occ),
        "blocking ({:.1}) should be fairer than optimistic ({:.1})",
        fairness(&b),
        fairness(&occ)
    );
    // And the large class must actually complete under blocking.
    assert!(b.class_reports[1].commits > 30);
}

#[test]
fn single_class_runs_have_one_class_report() {
    let r = run(SimConfig::new(CcAlgorithm::Blocking)
        .with_params(Params::paper_baseline().with_mpl(10))
        .with_metrics(metrics()))
    .unwrap();
    assert_eq!(r.class_reports.len(), 1);
    assert_eq!(r.class_reports[0].commits, r.commits);
    assert!((r.class_reports[0].response_time_mean - r.response_time_mean).abs() < 1e-9);
}

#[test]
fn class_extension_does_not_perturb_single_class_streams() {
    // Adding the classes machinery must not change the paper's runs: a
    // single-class generator draws no class-selection randomness.
    let base = run(SimConfig::new(CcAlgorithm::Blocking)
        .with_params(Params::paper_baseline().with_mpl(25))
        .with_metrics(metrics())
        .with_seed(777))
    .unwrap();
    let again = run(SimConfig::new(CcAlgorithm::Blocking)
        .with_params(Params::paper_baseline().with_mpl(25))
        .with_metrics(metrics())
        .with_seed(777))
    .unwrap();
    assert_eq!(base, again);
}
