//! Property-based testing of the whole simulator: random (small but legal)
//! parameter sets must preserve the model's invariants for every
//! algorithm, and safe algorithms must stay serializable.
//!
//! Runs are kept tiny (short horizons, few terminals) so the property suite
//! stays fast; the fidelity-sensitive assertions live in the deterministic
//! integration tests instead.

use ccsim_core::{
    check_conflict_serializable, run_with_history, CcAlgorithm, Confidence, MetricsConfig, Params,
    ResourceSpec, SimConfig,
};
use ccsim_des::SimDuration;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomConfig {
    db_size: u64,
    size_lo: u64,
    size_span: u64,
    write_prob: f64,
    num_terms: u32,
    mpl: u32,
    resources: ResourceSpec,
    algo: CcAlgorithm,
    seed: u64,
}

fn algo_strategy() -> impl Strategy<Value = CcAlgorithm> {
    prop_oneof![
        Just(CcAlgorithm::Blocking),
        Just(CcAlgorithm::ImmediateRestart),
        Just(CcAlgorithm::Optimistic),
        Just(CcAlgorithm::WaitDie),
        Just(CcAlgorithm::WoundWait),
        Just(CcAlgorithm::NoWaiting),
        Just(CcAlgorithm::StaticLocking),
        Just(CcAlgorithm::BasicTO),
    ]
}

fn resource_strategy() -> impl Strategy<Value = ResourceSpec> {
    prop_oneof![
        Just(ResourceSpec::Infinite),
        (1u32..4, 1u32..6).prop_map(|(c, d)| ResourceSpec::Physical {
            num_cpus: c,
            num_disks: d
        }),
    ]
}

fn config_strategy() -> impl Strategy<Value = RandomConfig> {
    (
        20u64..500,   // db_size
        1u64..5,      // size_lo
        0u64..6,      // size_span
        0.0f64..=1.0, // write_prob
        2u32..30,     // num_terms
        1u32..30,     // mpl
        resource_strategy(),
        algo_strategy(),
        any::<u64>(),
    )
        .prop_map(
            |(db_size, size_lo, size_span, write_prob, num_terms, mpl, resources, algo, seed)| {
                RandomConfig {
                    db_size,
                    size_lo,
                    size_span,
                    write_prob,
                    num_terms,
                    mpl,
                    resources,
                    algo,
                    seed,
                }
            },
        )
}

fn build(rc: &RandomConfig) -> Option<SimConfig> {
    let mut params = Params::paper_baseline();
    params.db_size = rc.db_size;
    params.min_size = rc.size_lo;
    params.max_size = (rc.size_lo + rc.size_span).min(rc.db_size);
    params.write_prob = rc.write_prob;
    params.num_terms = rc.num_terms;
    params.mpl = rc.mpl;
    params.resources = rc.resources;
    params.ext_think_time = SimDuration::from_millis(500);
    params.validate().ok()?;
    let mut cfg = SimConfig::new(rc.algo)
        .with_params(params)
        .with_metrics(MetricsConfig {
            warmup_batches: 0,
            batches: 2,
            batch_time: SimDuration::from_secs(20),
            confidence: Confidence::Ninety,
        })
        .with_seed(rc.seed);
    cfg.record_history = true;
    Some(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine neither panics nor violates its structural invariants on
    /// random configurations, and every safe algorithm's history is
    /// conflict-serializable.
    #[test]
    fn random_configs_preserve_invariants(rc in config_strategy()) {
        let Some(cfg) = build(&rc) else {
            // Parameter combination was illegal (e.g. max_size > db_size
            // after clamping); generation simply skips it.
            return Ok(());
        };
        let mpl = cfg.params.mpl;
        let terms = cfg.params.num_terms;
        let (report, history) = run_with_history(cfg).expect("validated config");

        // Structural invariants.
        prop_assert!(report.avg_active <= f64::from(mpl.min(terms)) + 1e-9);
        prop_assert!(report.response_time_mean >= 0.0);
        prop_assert!(report.disk_util_total.mean <= 1.0 + 1e-9);
        prop_assert!(report.cpu_util_total.mean <= 1.0 + 1e-9);
        prop_assert!(
            report.disk_util_useful.mean <= report.disk_util_total.mean + 0.02,
            "useful {} > total {}",
            report.disk_util_useful.mean,
            report.disk_util_total.mean
        );
        prop_assert_eq!(u64::try_from(history.len()).unwrap(), report.commits);

        // Blocking-family invariants. (Basic T/O has no locks but its
        // readers do wait on pending prewrites, so it may block.)
        if !rc.algo.uses_locks() && rc.algo != CcAlgorithm::BasicTO {
            prop_assert_eq!(report.blocks, 0, "lock-free algorithm blocked");
        }
        if matches!(
            rc.algo,
            CcAlgorithm::ImmediateRestart | CcAlgorithm::NoWaiting
        ) {
            prop_assert_eq!(report.blocks, 0, "no-wait algorithm blocked");
        }
        if rc.algo != CcAlgorithm::Blocking {
            prop_assert_eq!(report.deadlocks, 0, "{} deadlocked", rc.algo);
        }
        if rc.write_prob == 0.0 {
            prop_assert_eq!(report.restarts, 0, "read-only workload restarted");
        }

        // Serializability.
        if let Err(cycle) = check_conflict_serializable(&history) {
            prop_assert!(false, "{} produced a cycle: {cycle}", rc.algo);
        }
    }

    /// Replaying a random configuration reproduces the identical report.
    #[test]
    fn random_configs_are_deterministic(rc in config_strategy()) {
        let Some(cfg) = build(&rc) else { return Ok(()); };
        let (a, _) = run_with_history(cfg.clone()).expect("validated config");
        let (b, _) = run_with_history(cfg).expect("validated config");
        prop_assert_eq!(a, b);
    }
}
