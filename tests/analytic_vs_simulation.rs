//! Analytical model vs. simulation — the paper's central methodological
//! theme, turned into tests. In the regimes where the analytical tools are
//! valid (no or dilute data contention), the simulator must agree with
//! them; where contention dominates, the analytical bounds must still hold
//! as bounds.

use ccsim_analytic::{AnalyticModel, Contention};
use ccsim_core::{run, CcAlgorithm, Confidence, MetricsConfig, Params, ResourceSpec, SimConfig};
use ccsim_des::SimDuration;

fn metrics() -> MetricsConfig {
    MetricsConfig {
        warmup_batches: 1,
        batches: 6,
        batch_time: SimDuration::from_secs(40),
        confidence: Confidence::Ninety,
    }
}

/// Contention-free configuration: huge database, read-only workload, no mpl
/// cap — the simulated network *is* the MVA network.
fn contention_free(resources: ccsim_workload::ResourceSpec) -> Params {
    let mut p = Params::low_conflict()
        .with_mpl(200)
        .with_resources(resources);
    p.write_prob = 0.0;
    p
}

#[test]
fn mva_predicts_contention_free_throughput_one_cpu_two_disks() {
    let params = contention_free(ResourceSpec::ONE_CPU_TWO_DISKS);
    let model = AnalyticModel::new(params.clone());
    let predicted = model.mva(200).expect("finite resources").throughput;
    let simulated = run(SimConfig::new(CcAlgorithm::Optimistic)
        .with_params(params)
        .with_metrics(metrics()))
    .unwrap()
    .throughput
    .mean;
    let err = (simulated - predicted).abs() / predicted;
    assert!(
        err < 0.05,
        "MVA {predicted:.3} vs simulation {simulated:.3} ({:.1}% off)",
        err * 100.0
    );
}

#[test]
fn mva_predicts_contention_free_throughput_multiprocessor() {
    let params = contention_free(ResourceSpec::FIVE_CPUS_TEN_DISKS);
    let model = AnalyticModel::new(params.clone());
    let predicted = model.mva(200).expect("finite resources").throughput;
    let simulated = run(SimConfig::new(CcAlgorithm::Optimistic)
        .with_params(params)
        .with_metrics(metrics()))
    .unwrap()
    .throughput
    .mean;
    let err = (simulated - predicted).abs() / predicted;
    // The multi-server MVA approximation is a few percent optimistic.
    assert!(
        err < 0.08,
        "MVA {predicted:.3} vs simulation {simulated:.3} ({:.1}% off)",
        err * 100.0
    );
}

#[test]
fn infinite_resource_formula_matches_simulation() {
    let params = contention_free(ResourceSpec::Infinite);
    let model = AnalyticModel::new(params.clone());
    let predicted = model.infinite_resource_throughput();
    let simulated = run(SimConfig::new(CcAlgorithm::Optimistic)
        .with_params(params)
        .with_metrics(metrics()))
    .unwrap()
    .throughput
    .mean;
    let err = (simulated - predicted).abs() / predicted;
    assert!(
        err < 0.05,
        "formula {predicted:.2} vs simulation {simulated:.2}"
    );
}

#[test]
fn operational_bounds_hold_under_full_contention() {
    // Even at the paper's most contended settings, no algorithm may exceed
    // the operational bounds.
    for algo in CcAlgorithm::PAPER_TRIO {
        for mpl in [25, 200] {
            let params = Params::paper_baseline().with_mpl(mpl);
            let bound = AnalyticModel::new(params.clone()).throughput_upper_bound();
            let simulated = run(SimConfig::new(algo)
                .with_params(params)
                .with_metrics(metrics()))
            .unwrap()
            .throughput
            .mean;
            assert!(
                simulated <= bound * 1.01,
                "{algo}@{mpl}: {simulated:.2} exceeds operational bound {bound:.2}"
            );
        }
    }
}

#[test]
fn straw_man_block_ratio_is_the_right_magnitude_in_the_dilute_regime() {
    // At mpl=5 on the baseline database the first-order approximation
    // should get the block ratio right within a factor of two (it ignores
    // queueing correlations and lock-hold-time skew).
    let params = Params::paper_baseline().with_mpl(5);
    let report = run(SimConfig::new(CcAlgorithm::Blocking)
        .with_params(params.clone())
        .with_metrics(metrics()))
    .unwrap();
    let predicted = Contention::new(&params).expected_block_ratio(5);
    assert!(
        report.block_ratio < predicted * 2.0 && report.block_ratio > predicted / 4.0,
        "predicted ~{predicted:.3} blocks/commit, simulated {:.3}",
        report.block_ratio
    );
}

#[test]
fn tays_thrashing_heuristic_brackets_the_blocking_knee() {
    // The workload factor says blocking should be degrading well before
    // mpl=75 on the baseline database (factor 1.5 at mpl≈23). Check the
    // simulated knee: throughput at the heuristic mpl is higher than at 3x
    // beyond it (i.e., the curve has turned over in between).
    let heuristic = Contention::new(&Params::paper_baseline()).thrashing_mpl(1.5);
    assert!((10..=50).contains(&heuristic), "heuristic mpl {heuristic}");
    let tps = |mpl: u32| {
        run(SimConfig::new(CcAlgorithm::Blocking)
            .with_params(
                Params::paper_baseline()
                    .with_mpl(mpl)
                    .with_resources(ResourceSpec::Infinite),
            )
            .with_metrics(metrics()))
        .unwrap()
        .throughput
        .mean
    };
    let at_knee = tps(heuristic * 2);
    let past_knee = tps(heuristic * 8);
    assert!(
        past_knee < at_knee,
        "blocking should thrash past the heuristic knee: {at_knee:.1} vs {past_knee:.1}"
    );
}
