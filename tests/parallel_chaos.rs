//! Fault injection for the window-parallel worker lanes: a lane that dies
//! mid-speculation must surface as a loud panic from the run — never a
//! silent hang or a silently-sequential result — and a sweep must absorb
//! it as a typed per-point failure hole while the rest of the grid
//! completes.
//!
//! This lives in its own integration-test binary because the injection
//! switch is the process-global `CCSIM_CHAOS` environment variable; a
//! single `#[test]` keeps it race-free.

use ccsim_core::{run, CcAlgorithm, Confidence, MetricsConfig, Params, SimConfig};
use ccsim_des::SimDuration;
use ccsim_experiments::{catalog, run_experiment, FailureKind, Fidelity, RetryPolicy, RunOptions};

#[test]
fn injected_worker_panic_is_loud_and_leaves_a_typed_hole() {
    let mk = |workers| {
        SimConfig::new(CcAlgorithm::Blocking)
            .with_params(Params::paper_baseline().with_mpl(30))
            .with_metrics(MetricsConfig {
                warmup_batches: 1,
                batches: 2,
                batch_time: SimDuration::from_secs(20),
                confidence: Confidence::Ninety,
            })
            .with_seed(0xC4A05)
            .with_workers(workers)
    };

    std::env::set_var("CCSIM_CHAOS", "worker-panic");

    // Direct run: the merge thread notices the poisoned lane and panics
    // with a recognizable message instead of merging a half-speculated
    // window or hanging in quiesce.
    let outcome = std::panic::catch_unwind(|| run(mk(2)));
    let msg = match outcome {
        Err(payload) => payload
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default(),
        Ok(r) => panic!("chaos run did not panic: {r:?}"),
    };
    assert!(
        msg.contains("worker lane panicked"),
        "unexpected panic message: {msg:?}"
    );

    // Sequential runs never consult the chaos switch: the injection is
    // scoped to the lanes it tests.
    run(mk(1)).expect("sequential run is untouched by lane chaos");

    // Sweep: every parallel point fails, but the supervisor absorbs each
    // as a typed Panic hole and the sweep itself completes.
    let mut spec = catalog::exp3();
    spec.mpls = vec![10];
    let opts = |workers| RunOptions {
        fidelity: Fidelity::Quick,
        base_seed: 99,
        threads: 1,
        replications: 1,
        audit: false,
        retry: RetryPolicy::none(),
        event_pool: None,
        workers,
    };
    let holed = run_experiment(&spec, &opts(2)).expect("sweep survives lane panics");
    assert!(!holed.is_clean(), "chaos sweep reported itself clean");
    assert_eq!(
        holed.failures.len(),
        spec.num_runs(),
        "every parallel point should have failed"
    );
    for f in &holed.failures {
        assert_eq!(f.kind, FailureKind::Panic, "wrong failure kind: {f}");
        assert!(
            f.detail.contains("worker lane panicked"),
            "hole lost the panic message: {f}"
        );
    }

    // With the switch cleared, the identical sweep is clean again.
    std::env::remove_var("CCSIM_CHAOS");
    let clean = run_experiment(&spec, &opts(2)).expect("sweep completes");
    assert!(clean.is_clean(), "post-chaos sweep still failing");
    assert_eq!(clean.failures.len(), 0);
}
