//! Replication-layer guarantees, end to end:
//!
//! * the same `(base_seed, replication)` coordinate replays bit-for-bit no
//!   matter how many worker threads execute the sweep;
//! * different replication indices explore different sample paths;
//! * common random numbers — at one `(mpl, replication)` coordinate every
//!   algorithm is driven by the same workload streams, which we observe by
//!   running the concurrency-control-free engine under different control
//!   seeds and identical workload seeds.

use ccsim_core::{run, CcAlgorithm, Confidence, MetricsConfig, Params, SimConfig};
use ccsim_des::SimDuration;
use ccsim_experiments::{catalog, json, run_experiment, Fidelity, RetryPolicy, RunOptions};

fn quick() -> MetricsConfig {
    MetricsConfig {
        warmup_batches: 1,
        batches: 4,
        batch_time: SimDuration::from_secs(25),
        confidence: Confidence::Ninety,
    }
}

fn tiny_opts(threads: usize, replications: u32) -> RunOptions {
    RunOptions {
        fidelity: Fidelity::Quick,
        base_seed: 0xBEEF,
        threads,
        replications,
        audit: false,
        retry: RetryPolicy::none(),
        event_pool: None,
        workers: 1,
    }
}

#[test]
fn replicated_sweep_is_identical_across_thread_counts() {
    let mut spec = catalog::exp3();
    spec.mpls = vec![10];
    let serial = run_experiment(&spec, &tiny_opts(1, 3)).expect("sweep completes");
    let parallel = run_experiment(&spec, &tiny_opts(0, 3)).expect("sweep completes");
    for (a, b) in serial.points.iter().zip(parallel.points.iter()) {
        assert_eq!(a.series, b.series);
        assert_eq!(
            a.replicates, b.replicates,
            "{}@{} diverged",
            a.series, a.mpl
        );
        assert_eq!(a.report, b.report);
    }
    assert_eq!(json::to_json(&serial), json::to_json(&parallel));
}

#[test]
fn replications_explore_distinct_sample_paths() {
    let mut spec = catalog::exp3();
    spec.mpls = vec![10];
    let result = run_experiment(&spec, &tiny_opts(0, 3)).expect("sweep completes");
    for p in &result.points {
        assert_eq!(p.replicates.len(), 3);
        for i in 0..p.replicates.len() {
            for j in i + 1..p.replicates.len() {
                assert_ne!(
                    p.replicates[i], p.replicates[j],
                    "{}@{}: replications {i} and {j} replayed the same stream",
                    p.series, p.mpl
                );
            }
        }
    }
}

#[test]
fn crn_replication_means_are_paired_across_algorithms() {
    // Same replication index => same workload seed for every series, so the
    // per-replication throughput vectors support a paired comparison.
    let mut spec = catalog::exp3();
    spec.mpls = vec![10];
    let result = run_experiment(&spec, &tiny_opts(0, 3)).expect("sweep completes");
    let b = result.rep_throughputs("blocking", 10).unwrap();
    let ir = result.rep_throughputs("immediate-restart", 10).unwrap();
    assert_eq!(b.len(), 3);
    assert_eq!(ir.len(), 3);
    let t = result
        .paired_throughput_t("blocking", "immediate-restart", 10)
        .expect("three paired replications");
    assert_eq!(t.n, 3);
    assert!(t.mean_diff.is_finite());
}

#[test]
fn workload_seed_controls_the_workload_streams() {
    // With concurrency control disabled the engine consumes only workload
    // streams, so two runs sharing a workload seed must be bit-identical
    // even under different master (control) seeds...
    let mk = |seed: u64, workload: u64| {
        SimConfig::new(CcAlgorithm::NoCc)
            .with_params(Params::paper_baseline().with_mpl(20))
            .with_metrics(quick())
            .with_seed(seed)
            .with_workload_seed(workload)
    };
    let a = run(mk(111, 7)).unwrap();
    let b = run(mk(222, 7)).unwrap();
    assert_eq!(
        a, b,
        "control seed leaked into the workload: CRN pairing is broken"
    );
    // ...while changing the workload seed changes the sample path.
    let c = run(mk(111, 8)).unwrap();
    assert_ne!(a, c, "workload seed had no effect");
}

#[test]
fn absent_workload_seed_preserves_single_seed_behavior() {
    // `workload_seed: None` must reproduce exactly what `workload_seed ==
    // seed` produces: the pre-replication single-seed behavior.
    let base = SimConfig::new(CcAlgorithm::Blocking)
        .with_params(Params::paper_baseline().with_mpl(15))
        .with_metrics(quick())
        .with_seed(0xABCD);
    let implicit = run(base.clone()).unwrap();
    let explicit = run(base.with_workload_seed(0xABCD)).unwrap();
    assert_eq!(implicit, explicit);
}
