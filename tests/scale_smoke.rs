//! Budgeted smoke of the million-scale regime (`exp-scale`): the run must
//! stop on its event budget with a salvaged window, audit clean, and — on
//! Linux, when `BENCH_7.json` carries an archived ceiling — keep peak RSS
//! under it. The test lives in its own integration binary so the process
//! high-water mark (`VmHWM`) is attributable to this regime alone.
//!
//! The point is profile-scaled: release builds (the CI `scale-smoke` job
//! runs `cargo test --release --test scale_smoke`) exercise the full
//! 10^6-terminal, mpl-10^5 shape; debug builds shrink terminals and the
//! budget so tier-1 `cargo test -q` stays fast while walking the same
//! sparse-lock-table / arena / streaming-quantile code paths.

use ccsim_audit::attach;
use ccsim_core::{
    BudgetKind, CcAlgorithm, Confidence, MetricsConfig, Params, RunBudget, RunError, SimConfig,
    Simulator,
};
use ccsim_des::SimDuration;

/// The `exp-scale` regime, profile-scaled as described in the module doc.
fn scale_cfg() -> SimConfig {
    let mut params = Params::exp_scale();
    let max_events = if cfg!(debug_assertions) {
        params.num_terms = 100_000;
        params.mpl = 10_000;
        200_000
    } else {
        2_000_000
    };
    // Budget, not horizon, ends the run: no warmup and short batches so
    // the salvaged window carries batch counts and streaming quantiles
    // from the first commit (same shape the throughput bench uses).
    let metrics = MetricsConfig {
        warmup_batches: 0,
        batches: 400,
        batch_time: SimDuration::from_millis(250),
        confidence: Confidence::Ninety,
    };
    SimConfig::new(CcAlgorithm::Blocking)
        .with_params(params)
        .with_metrics(metrics)
        .with_seed(0x5CA1E)
        .with_budget(RunBudget::unlimited().with_max_events(max_events))
}

/// Peak resident set (`VmHWM`) of this test process, Linux only.
fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
        return Some(kb * 1024);
    }
    #[allow(unreachable_code)]
    None
}

/// The archived RSS ceiling from the tracked benchmark file, if present.
fn archived_rss_ceiling() -> Option<u64> {
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_7.json")).ok()?;
    // One numeric field; a full JSON parse would drag a dependency into
    // the root test just for this.
    let key = "\"rss_ceiling_bytes\":";
    let at = text.find(key)? + key.len();
    let digits: String = text[at..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[test]
fn budgeted_scale_point_audits_clean_and_stays_under_the_rss_ceiling() {
    let cfg = scale_cfg();
    let budget_events = cfg.budget.max_events.expect("budget caps events");
    let mut sim = Simulator::new(cfg).expect("exp-scale config is valid");
    let handle = attach(&mut sim);
    let out = sim.run_collecting();

    // Bounded completion: the event ceiling — not an error, not the
    // horizon — ended the run, and the partial window was salvaged.
    match &out.stopped {
        Some(RunError::BudgetExhausted { exceeded, .. }) => {
            assert_eq!(
                *exceeded,
                BudgetKind::Events,
                "stopped on the wrong ceiling"
            );
        }
        other => panic!("expected an event-budget stop, got {other:?}"),
    }
    assert!(out.perf.events >= budget_events);
    assert!(out.report.commits > 0, "salvaged window has no commits");
    assert!(
        out.quantiles.count > 0,
        "streaming quantiles saw no commits"
    );
    assert!(
        out.quantiles.p50 <= out.quantiles.p95 && out.quantiles.p95 <= out.quantiles.p99,
        "quantiles out of order: {:?}",
        out.quantiles
    );

    // The auditor saw the whole run — including the budget-stop finish —
    // and found every invariant intact.
    let audit = handle.report();
    assert!(audit.run_ended, "auditor missed the end of the run");
    assert!(audit.is_clean(), "invariants violated:\n{}", audit.render());

    // Memory ceiling: only binding where VmHWM is measurable and an
    // archived ceiling exists (the ceiling was measured at the *full*
    // 10-million-event point, so the budgeted smoke sits well under it).
    match (peak_rss_bytes(), archived_rss_ceiling()) {
        (Some(rss), Some(ceiling)) => {
            assert!(
                rss <= ceiling,
                "peak RSS {:.0} MiB exceeds the archived ceiling {:.0} MiB",
                rss as f64 / (1024.0 * 1024.0),
                ceiling as f64 / (1024.0 * 1024.0)
            );
        }
        (rss, ceiling) => {
            eprintln!("skipping RSS ceiling check (measured {rss:?}, archived {ceiling:?})");
        }
    }
}
