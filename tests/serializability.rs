//! End-to-end correctness: every *safe* concurrency control algorithm must
//! produce conflict-serializable histories under heavy contention, and the
//! deliberately unsafe `NoCc` baseline must be caught violating
//! serializability by the same checker — demonstrating that the checker has
//! teeth and that the algorithms' safety is a property of the algorithms,
//! not of the workload.

use ccsim_core::{
    check_conflict_serializable, run_with_history, CcAlgorithm, Confidence, MetricsConfig, Params,
    ResourceSpec, SimConfig,
};
use ccsim_des::SimDuration;

fn hot_params() -> Params {
    // Small database, all-write transactions, many concurrent: conflicts on
    // nearly every transaction.
    let mut p = Params::paper_baseline().with_mpl(20);
    p.db_size = 100;
    p.write_prob = 0.75;
    p
}

fn metrics() -> MetricsConfig {
    MetricsConfig {
        warmup_batches: 0,
        batches: 3,
        batch_time: SimDuration::from_secs(30),
        confidence: Confidence::Ninety,
    }
}

fn cfg(algo: CcAlgorithm, seed: u64) -> SimConfig {
    let mut c = SimConfig::new(algo)
        .with_params(hot_params())
        .with_metrics(metrics())
        .with_seed(seed);
    c.record_history = true;
    c
}

#[test]
fn safe_algorithms_produce_serializable_histories() {
    for algo in CcAlgorithm::ALL {
        for seed in [1, 2] {
            let (report, history) = run_with_history(cfg(algo, seed)).unwrap();
            // The denial-restart algorithms legitimately collapse on this
            // upgrade-storm workload (every pair of overlapping readers
            // kills each other's upgrades); they still must stay
            // serializable for whatever they commit.
            let floor = match algo {
                CcAlgorithm::NoWaiting => 1,
                CcAlgorithm::ImmediateRestart => 5,
                CcAlgorithm::WaitDie | CcAlgorithm::BasicTO => 20,
                _ => 50,
            };
            assert!(
                history.len() >= floor,
                "{algo}/seed{seed}: too few commits recorded ({})",
                history.len()
            );
            let order = check_conflict_serializable(&history).unwrap_or_else(|e| {
                panic!("{algo}/seed{seed} produced a non-serializable history: {e}")
            });
            assert_eq!(order.len(), history.len());
            assert_eq!(u64::try_from(history.len()).unwrap(), report.commits);
        }
    }
}

#[test]
fn safe_algorithms_stay_serializable_under_infinite_resources() {
    // Infinite resources maximize overlap (every transaction runs truly in
    // parallel), the adversarial case for validation logic.
    for algo in CcAlgorithm::PAPER_TRIO {
        let mut c = cfg(algo, 7);
        c.params.resources = ResourceSpec::Infinite;
        let (_, history) = run_with_history(c).unwrap();
        assert!(history.len() > 100, "{algo}: {} commits", history.len());
        check_conflict_serializable(&history)
            .unwrap_or_else(|e| panic!("{algo} violated serializability: {e}"));
    }
}

#[test]
fn basic_to_stays_serializable_with_maximal_overlap() {
    // The adversarial case for timestamp ordering: infinite resources (all
    // transactions truly concurrent) on a hot database, where larger-
    // timestamp writers routinely publish between a reader's timestamp
    // check and its access completion. The history must still check out —
    // reads are recorded at their grant instant, where the version is
    // decided.
    for seed in [1, 2, 3] {
        let mut c = cfg(CcAlgorithm::BasicTO, seed);
        c.params.resources = ResourceSpec::Infinite;
        c.params.mpl = 50;
        let (report, history) = run_with_history(c).unwrap();
        // Timestamp rejections are rampant at this contention level; the
        // point is what *does* commit must be serializable.
        assert!(
            report.commits > 10,
            "seed{seed}: {} commits",
            report.commits
        );
        check_conflict_serializable(&history).unwrap_or_else(|e| {
            panic!("basic-to/seed{seed} produced a non-serializable history: {e}")
        });
    }
}

#[test]
fn no_cc_baseline_violates_serializability() {
    // Without any concurrency control, overlapping read-modify-write
    // transactions on a hot database produce conflict cycles essentially
    // immediately. If this ever starts passing, the checker lost its teeth.
    let (report, history) = run_with_history(cfg(CcAlgorithm::NoCc, 3)).unwrap();
    assert!(report.commits > 100, "no-cc should commit freely");
    let err = check_conflict_serializable(&history)
        .expect_err("no-cc must violate serializability under contention");
    assert!(!err.edges.is_empty());
    // The cycle must be well-formed (edges chain and close).
    for w in err.edges.windows(2) {
        assert_eq!(w[0].to, w[1].from);
    }
    assert_eq!(
        err.edges.last().unwrap().to,
        err.edges.first().unwrap().from
    );
}

#[test]
fn no_cc_is_the_throughput_upper_bound() {
    // NoCc pays no blocking and no restarts, so it bounds every safe
    // algorithm from above on the same workload and seed.
    let (nocc, _) = run_with_history(cfg(CcAlgorithm::NoCc, 11)).unwrap();
    for algo in CcAlgorithm::PAPER_TRIO {
        let (r, _) = run_with_history(cfg(algo, 11)).unwrap();
        assert!(
            r.throughput.mean <= nocc.throughput.mean * 1.02,
            "{algo} ({}) exceeded the no-cc bound ({})",
            r.throughput.mean,
            nocc.throughput.mean
        );
    }
}

#[test]
fn history_read_times_are_within_attempt_bounds() {
    let (_, history) = run_with_history(cfg(CcAlgorithm::Blocking, 5)).unwrap();
    for t in history.txns() {
        for &(obj, at) in &t.reads {
            assert!(
                at >= t.start,
                "{}: read of {obj} at {at} precedes attempt start {}",
                t.id,
                t.start
            );
            assert!(
                at <= t.commit_at,
                "{}: read of {obj} at {at} after commit {}",
                t.id,
                t.commit_at
            );
        }
        assert!(!t.reads.is_empty(), "transactions read at least one object");
    }
}
