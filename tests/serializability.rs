//! End-to-end correctness: every *safe* concurrency control algorithm must
//! produce conflict-serializable histories under heavy contention, and the
//! deliberately unsafe `NoCc` baseline must be caught violating
//! serializability by the same checker — demonstrating that the checker has
//! teeth and that the algorithms' safety is a property of the algorithms,
//! not of the workload.
//!
//! Snapshot isolation is the deliberate exception: MVCC-SI admits write
//! skew, so its histories go through the history-level SI oracle instead —
//! first-committer-wins holds, every conflict cycle is explained by
//! vulnerable anti-dependencies, and the skew that *does* occur is counted,
//! not hidden.

use ccsim_core::{
    check_conflict_serializable, check_snapshot_isolation, run_with_history, CcAlgorithm,
    Confidence, MetricsConfig, Params, ResourceSpec, SimConfig,
};
use ccsim_des::SimDuration;

fn hot_params() -> Params {
    // Small database, all-write transactions, many concurrent: conflicts on
    // nearly every transaction.
    let mut p = Params::paper_baseline().with_mpl(20);
    p.db_size = 100;
    p.write_prob = 0.75;
    p
}

fn metrics() -> MetricsConfig {
    MetricsConfig {
        warmup_batches: 0,
        batches: 3,
        batch_time: SimDuration::from_secs(30),
        confidence: Confidence::Ninety,
    }
}

fn cfg(algo: CcAlgorithm, seed: u64) -> SimConfig {
    let mut c = SimConfig::new(algo)
        .with_params(hot_params())
        .with_metrics(metrics())
        .with_seed(seed);
    c.record_history = true;
    c
}

#[test]
fn safe_algorithms_produce_serializable_histories() {
    for algo in CcAlgorithm::ALL {
        for seed in [1, 2] {
            let (report, history) = run_with_history(cfg(algo, seed)).unwrap();
            // The denial-restart algorithms legitimately collapse on this
            // upgrade-storm workload (every pair of overlapping readers
            // kills each other's upgrades); they still must stay
            // serializable for whatever they commit.
            let floor = match algo {
                CcAlgorithm::NoWaiting => 1,
                CcAlgorithm::ImmediateRestart => 5,
                CcAlgorithm::WaitDie | CcAlgorithm::BasicTO => 20,
                _ => 50,
            };
            assert!(
                history.len() >= floor,
                "{algo}/seed{seed}: too few commits recorded ({})",
                history.len()
            );
            if algo == CcAlgorithm::MvccSi {
                // Snapshot isolation is checked against its own contract;
                // demanding full serializability here would reject legal
                // write skew.
                let rep = check_snapshot_isolation(&history).unwrap_or_else(|e| {
                    panic!("{algo}/seed{seed} violated snapshot isolation: {e}")
                });
                assert_eq!(rep.serial_order.len(), history.len());
            } else {
                let order = check_conflict_serializable(&history).unwrap_or_else(|e| {
                    panic!("{algo}/seed{seed} produced a non-serializable history: {e}")
                });
                assert_eq!(order.len(), history.len());
            }
            assert_eq!(u64::try_from(history.len()).unwrap(), report.commits);
        }
    }
}

#[test]
fn safe_algorithms_stay_serializable_under_infinite_resources() {
    // Infinite resources maximize overlap (every transaction runs truly in
    // parallel), the adversarial case for validation logic.
    for algo in CcAlgorithm::PAPER_TRIO {
        let mut c = cfg(algo, 7);
        c.params.resources = ResourceSpec::Infinite;
        let (_, history) = run_with_history(c).unwrap();
        assert!(history.len() > 100, "{algo}: {} commits", history.len());
        check_conflict_serializable(&history)
            .unwrap_or_else(|e| panic!("{algo} violated serializability: {e}"));
    }
}

#[test]
fn basic_to_stays_serializable_with_maximal_overlap() {
    // The adversarial case for timestamp ordering: infinite resources (all
    // transactions truly concurrent) on a hot database, where larger-
    // timestamp writers routinely publish between a reader's timestamp
    // check and its access completion. The history must still check out —
    // reads are recorded at their grant instant, where the version is
    // decided.
    for seed in [1, 2, 3] {
        let mut c = cfg(CcAlgorithm::BasicTO, seed);
        c.params.resources = ResourceSpec::Infinite;
        c.params.mpl = 50;
        let (report, history) = run_with_history(c).unwrap();
        // Timestamp rejections are rampant at this contention level; the
        // point is what *does* commit must be serializable.
        assert!(
            report.commits > 10,
            "seed{seed}: {} commits",
            report.commits
        );
        check_conflict_serializable(&history).unwrap_or_else(|e| {
            panic!("basic-to/seed{seed} produced a non-serializable history: {e}")
        });
    }
}

#[test]
fn modern_trio_stays_correct_with_maximal_overlap() {
    // Infinite resources on a hot database: every transaction truly runs in
    // parallel, the adversarial case for commit-time certification. Silo
    // and TicToc must be fully serializable; MVCC-SI must satisfy the SI
    // oracle.
    for algo in CcAlgorithm::MODERN_TRIO {
        for seed in [1, 2] {
            let mut c = cfg(algo, seed);
            c.params.resources = ResourceSpec::Infinite;
            c.params.mpl = 50;
            let (report, history) = run_with_history(c).unwrap();
            assert!(
                report.commits > 50,
                "{algo}/seed{seed}: {} commits",
                report.commits
            );
            if algo == CcAlgorithm::MvccSi {
                let rep = check_snapshot_isolation(&history).unwrap_or_else(|e| {
                    panic!("{algo}/seed{seed} violated snapshot isolation: {e}")
                });
                assert_eq!(rep.serial_order.len(), history.len());
            } else {
                check_conflict_serializable(&history).unwrap_or_else(|e| {
                    panic!("{algo}/seed{seed} produced a non-serializable history: {e}")
                });
            }
        }
    }
}

#[test]
fn mvcc_si_write_skew_is_observed_and_counted() {
    // On the hot all-write workload snapshot isolation *will* interleave
    // concurrent readers that write disjoint objects. The oracle's job is
    // to prove every such anomaly is of the permitted shape and report how
    // many occurred; across seeds, at least one run should exhibit skew or
    // vulnerable anti-dependencies (if SI never admitted any, it would be
    // indistinguishable from full serializability and over-restrictive).
    let mut vulnerable_total = 0usize;
    for seed in [1, 2, 3, 4] {
        let mut c = cfg(CcAlgorithm::MvccSi, seed);
        c.params.resources = ResourceSpec::Infinite;
        c.params.mpl = 50;
        let (_, history) = run_with_history(c).unwrap();
        let rep = check_snapshot_isolation(&history)
            .unwrap_or_else(|e| panic!("seed{seed} violated snapshot isolation: {e}"));
        vulnerable_total += rep.vulnerable_rw.len();
        // Every write-skew pair must consist of recorded transactions.
        for &(a, b) in &rep.write_skew_pairs {
            assert!(a < b, "pairs are reported in canonical order");
            assert!(history.txns().iter().any(|t| t.id == a));
            assert!(history.txns().iter().any(|t| t.id == b));
        }
    }
    assert!(
        vulnerable_total > 0,
        "SI under maximal overlap should admit some vulnerable anti-dependencies"
    );
}

#[test]
fn dsg_oracle_backstops_the_existing_trio() {
    // Regression backstop over the original algorithms. All three must
    // pass the strict dependency-graph check (above and re-asserted here
    // on a fresh seed). The SI oracle additionally accepts the optimistic
    // history: under Kung–Robinson with writes ⊆ reads, two overlapping
    // writers of one object can never both commit — the later one fails
    // validation — so first-committer-wins holds and zero write skew can
    // appear. Lock-based histories are *not* fed to the SI oracle: a
    // blocked writer's attempt interval legitimately overlaps the
    // holder's, which SI's first-committer-wins rule forbids (and the
    // oracle correctly flags — that rejection is part of its contract).
    for algo in CcAlgorithm::PAPER_TRIO {
        let (_, history) = run_with_history(cfg(algo, 9)).unwrap();
        check_conflict_serializable(&history)
            .unwrap_or_else(|e| panic!("{algo} violated serializability: {e}"));
        if algo == CcAlgorithm::Optimistic {
            let rep = check_snapshot_isolation(&history)
                .unwrap_or_else(|e| panic!("{algo} rejected by the SI oracle: {e}"));
            assert_eq!(rep.serial_order.len(), history.len());
            assert!(
                rep.write_skew_pairs.is_empty(),
                "{algo}: a serializable history cannot exhibit write skew"
            );
        }
    }
}

#[test]
fn no_cc_baseline_violates_serializability() {
    // Without any concurrency control, overlapping read-modify-write
    // transactions on a hot database produce conflict cycles essentially
    // immediately. If this ever starts passing, the checker lost its teeth.
    let (report, history) = run_with_history(cfg(CcAlgorithm::NoCc, 3)).unwrap();
    assert!(report.commits > 100, "no-cc should commit freely");
    let err = check_conflict_serializable(&history)
        .expect_err("no-cc must violate serializability under contention");
    assert!(!err.edges.is_empty());
    // The cycle must be well-formed (edges chain and close).
    for w in err.edges.windows(2) {
        assert_eq!(w[0].to, w[1].from);
    }
    assert_eq!(
        err.edges.last().unwrap().to,
        err.edges.first().unwrap().from
    );
}

#[test]
fn no_cc_is_the_throughput_upper_bound() {
    // NoCc pays no blocking and no restarts, so it bounds every safe
    // algorithm from above on the same workload and seed.
    let (nocc, _) = run_with_history(cfg(CcAlgorithm::NoCc, 11)).unwrap();
    for algo in CcAlgorithm::PAPER_TRIO {
        let (r, _) = run_with_history(cfg(algo, 11)).unwrap();
        assert!(
            r.throughput.mean <= nocc.throughput.mean * 1.02,
            "{algo} ({}) exceeded the no-cc bound ({})",
            r.throughput.mean,
            nocc.throughput.mean
        );
    }
}

#[test]
fn history_read_times_are_within_attempt_bounds() {
    let (_, history) = run_with_history(cfg(CcAlgorithm::Blocking, 5)).unwrap();
    for t in history.txns() {
        for &(obj, at) in &t.reads {
            assert!(
                at >= t.start,
                "{}: read of {obj} at {at} precedes attempt start {}",
                t.id,
                t.start
            );
            assert!(
                at <= t.commit_at,
                "{}: read of {obj} at {at} after commit {}",
                t.id,
                t.commit_at
            );
        }
        assert!(!t.reads.is_empty(), "transactions read at least one object");
    }
}
