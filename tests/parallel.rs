//! The speculative window-parallel engine mode's core contract: at any
//! worker count, every report, streaming quantile, and golden trace is
//! byte-identical to the sequential loop. Speedup is a side effect the
//! benchmarks measure; *these* tests pin the part that must never drift.

use ccsim_audit::golden::serialize_trace;
use ccsim_audit::run_with_audit;
use ccsim_core::{
    run, run_collecting, run_with_perf, run_with_trace, CcAlgorithm, Confidence, MetricsConfig,
    Params, RunBudget, SimConfig,
};
use ccsim_des::SimDuration;

fn quick() -> MetricsConfig {
    MetricsConfig {
        warmup_batches: 1,
        batches: 4,
        batch_time: SimDuration::from_secs(25),
        confidence: Confidence::Ninety,
    }
}

fn tracked_algorithms() -> impl Iterator<Item = CcAlgorithm> {
    CcAlgorithm::PAPER_TRIO
        .into_iter()
        .chain(CcAlgorithm::MODERN_TRIO)
}

#[test]
fn window_mode_reports_are_byte_identical() {
    // Paper trio + modern trio at a contended mpl: the full report must be
    // byte-equal between the sequential loop and every tested worker count.
    for algo in tracked_algorithms() {
        let mk = |workers| {
            SimConfig::new(algo)
                .with_params(Params::paper_baseline().with_mpl(50))
                .with_metrics(quick())
                .with_seed(0x7ACE)
                .with_workers(workers)
        };
        let seq = run(mk(1)).unwrap();
        for workers in [2, 4, 8] {
            let par = run(mk(workers)).unwrap();
            assert_eq!(
                seq, par,
                "{algo}: workers={workers} diverged from sequential"
            );
        }
    }
}

#[test]
fn window_mode_populates_parallel_stats() {
    let mk = |workers| {
        SimConfig::new(CcAlgorithm::Blocking)
            .with_params(Params::paper_baseline().with_mpl(50))
            .with_metrics(quick())
            .with_seed(0x7ACE)
            .with_workers(workers)
    };
    // Sequential runs carry no parallel stats at all — the mode costs
    // nothing when off (workers 0 and 1 are the same loop).
    let (seq_report, seq_perf) = run_with_perf(mk(1)).unwrap();
    assert!(seq_perf.parallel.is_none());
    let (zero_report, zero_perf) = run_with_perf(mk(0)).unwrap();
    assert!(zero_perf.parallel.is_none());
    assert_eq!(seq_report, zero_report);

    let (par_report, par_perf) = run_with_perf(mk(4)).unwrap();
    assert_eq!(seq_report, par_report);
    let p = par_perf.parallel.expect("window mode records stats");
    assert_eq!(p.workers, 4);
    assert!(p.windows > 0, "no windows were formed");
    assert!(p.planned >= p.speculated, "speculated more than planned");
    assert_eq!(
        p.speculated,
        p.applied + p.rolled_back,
        "every speculated event is either applied or rolled back"
    );
    assert_eq!(p.rolled_back, p.replayed);
    assert!(
        (0.0..=1.0).contains(&p.rollback_ratio()),
        "rollback ratio out of range: {}",
        p.rollback_ratio()
    );
    // The merge lane (lane 0) did real work and its busy fraction is sane.
    assert!(p.worker_busy_us[0] > 0, "merge lane recorded no busy time");
    for lane in 0..4 {
        let f = p.busy_fraction(lane);
        assert!((0.0..=1.0).contains(&f), "lane {lane} busy fraction {f}");
    }
    // The event counts agree with the sequential run exactly.
    assert_eq!(seq_perf.events, par_perf.events);
}

#[test]
fn window_mode_golden_traces_are_byte_identical() {
    // The same fixed scenario as the golden-trace harness: the serialized
    // event stream at workers 2/4/8 must match the sequential text AND the
    // checked-in golden file byte-for-byte.
    for algo in tracked_algorithms() {
        let mk = |workers: u32| {
            let mut params = Params::paper_baseline();
            params.db_size = 50;
            params.min_size = 2;
            params.max_size = 6;
            params.write_prob = 0.5;
            params.num_terms = 12;
            params.mpl = 4;
            params.ext_think_time = SimDuration::from_secs(1);
            SimConfig::new(algo)
                .with_params(params)
                .with_metrics(MetricsConfig {
                    warmup_batches: 0,
                    batches: 1,
                    batch_time: SimDuration::from_secs(5),
                    confidence: Confidence::Ninety,
                })
                .with_seed(0x601D)
                .with_workers(workers)
        };
        let cfg = mk(1);
        let (report, trace) = run_with_trace(cfg.clone(), 1_000_000).unwrap();
        let seq_text = serialize_trace(&cfg, &trace, &report);
        let golden = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(format!("{}.trace", algo.label()));
        let blessed = std::fs::read_to_string(&golden)
            .unwrap_or_else(|e| panic!("{algo}: reading {}: {e}", golden.display()));
        for workers in [2, 4, 8] {
            let cfg = mk(workers);
            let (report, trace) = run_with_trace(cfg.clone(), 1_000_000).unwrap();
            let text = serialize_trace(&cfg, &trace, &report);
            assert_eq!(
                seq_text, text,
                "{algo}: workers={workers} trace diverged from sequential"
            );
            assert_eq!(
                blessed, text,
                "{algo}: workers={workers} trace diverged from the golden file"
            );
        }
    }
}

#[test]
fn window_mode_scale_point_is_byte_identical() {
    // A budget-bounded slice of the exp-scale regime (sparse lock table,
    // arena txn state, streaming quantiles): report, quantiles, and the
    // exact event count must survive the worker sweep, including the
    // budget stop landing on the same event.
    let mk = |workers| {
        let mut params = Params::exp_scale();
        params.num_terms = 50_000;
        params.mpl = 5_000;
        SimConfig::new(CcAlgorithm::Blocking)
            .with_params(params)
            .with_metrics(MetricsConfig {
                warmup_batches: 0,
                batches: 400,
                batch_time: SimDuration::from_millis(250),
                confidence: Confidence::Ninety,
            })
            .with_seed(0x5CA1ED)
            .with_budget(RunBudget::unlimited().with_max_events(300_000))
            .with_workers(workers)
    };
    let base = run_collecting(mk(1)).unwrap();
    assert!(base.stopped.is_some(), "the point should stop on budget");
    assert!(base.report.commits > 0, "salvaged window has no commits");
    for workers in [2, 4] {
        let par = run_collecting(mk(workers)).unwrap();
        assert_eq!(
            base.report, par.report,
            "workers={workers} changed the scale report"
        );
        assert_eq!(base.quantiles, par.quantiles);
        assert_eq!(base.perf.events, par.perf.events);
        assert!(par.stopped.is_some(), "workers={workers} missed the budget");
    }
}

#[test]
fn window_mode_is_auditor_clean() {
    // The online invariant auditor rides the window merge exactly as it
    // rides the sequential loop: no violations, and observation does not
    // perturb the run.
    for algo in CcAlgorithm::PAPER_TRIO {
        let mk = || {
            SimConfig::new(algo)
                .with_params(Params::paper_baseline().with_mpl(50))
                .with_metrics(quick())
                .with_seed(0x7ACE)
                .with_workers(4)
        };
        let (audited, audit) = run_with_audit(mk()).unwrap();
        let violations = audit.summaries();
        assert!(
            violations.is_empty(),
            "{algo}: audit violations at workers=4: {violations:?}"
        );
        let plain = run(mk()).unwrap();
        assert_eq!(audited, plain, "{algo}: the auditor perturbed the run");
    }
}

#[test]
fn sweep_runner_plumbs_workers_through() {
    // `RunOptions::workers` reaches every grid point's SimConfig; the
    // sweep result is identical because window mode cannot change results.
    use ccsim_experiments::{catalog, json, run_experiment, Fidelity, RetryPolicy, RunOptions};
    let mut spec = catalog::exp3();
    spec.mpls = vec![10];
    let opts = |workers| RunOptions {
        fidelity: Fidelity::Quick,
        base_seed: 99,
        threads: 1,
        replications: 1,
        audit: false,
        retry: RetryPolicy::none(),
        event_pool: None,
        workers,
    };
    let seq = run_experiment(&spec, &opts(1)).expect("sweep completes");
    let par = run_experiment(&spec, &opts(4)).expect("sweep completes");
    assert_eq!(json::to_json(&seq), json::to_json(&par));
}
