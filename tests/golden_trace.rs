//! Golden-trace regression harness: a small contended run of each paper
//! algorithm is serialized to a stable text form and compared line-by-line
//! against the checked-in files in `tests/golden/`. Any change to engine
//! scheduling, conflict resolution, or seeding shows up here as a readable
//! diff instead of a silent drift in summary statistics.
//!
//! To bless an intentional behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! then review the trace diffs like any other code change.

use std::path::PathBuf;

use ccsim_audit::golden::{check_or_update, serialize_trace};
use ccsim_core::{run_with_trace, CcAlgorithm, Confidence, MetricsConfig, Params, SimConfig};
use ccsim_des::SimDuration;

/// The fixed scenario behind every golden file: a dozen terminals hammering
/// a 50-page database with half the accesses writing, so all three
/// algorithms block/restart/validate within a 5-second horizon — short
/// enough that the full event stream fits in a reviewable text file.
fn golden_config(algo: CcAlgorithm) -> SimConfig {
    let mut params = Params::paper_baseline();
    params.db_size = 50;
    params.min_size = 2;
    params.max_size = 6;
    params.write_prob = 0.5;
    params.num_terms = 12;
    params.mpl = 4;
    params.ext_think_time = SimDuration::from_secs(1);
    SimConfig::new(algo)
        .with_params(params)
        .with_metrics(MetricsConfig {
            warmup_batches: 0,
            batches: 1,
            batch_time: SimDuration::from_secs(5),
            confidence: Confidence::Ninety,
        })
        .with_seed(0x601D)
}

fn golden_path(label: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{label}.trace"))
}

fn tracked_algorithms() -> impl Iterator<Item = CcAlgorithm> {
    CcAlgorithm::PAPER_TRIO
        .into_iter()
        .chain(CcAlgorithm::MODERN_TRIO)
}

#[test]
fn paper_trio_traces_match_golden_files() {
    for algo in tracked_algorithms() {
        let cfg = golden_config(algo);
        let (report, trace) = run_with_trace(cfg.clone(), 1_000_000).unwrap();
        assert_eq!(trace.dropped(), 0, "{algo} golden trace overflowed");
        assert!(!trace.is_empty(), "{algo} golden run recorded nothing");
        let text = serialize_trace(&cfg, &trace, &report);
        if let Err(msg) = check_or_update(&golden_path(algo.label()), &text) {
            panic!("{algo}: {msg}");
        }
    }
}

#[test]
fn golden_traces_match_with_elision_forced_off() {
    // The uncontended fast path is a pure cost optimization: with it
    // forced off, the very same checked-in golden files must still match
    // byte-for-byte (never UPDATE_GOLDEN through this test — it checks
    // against the files the elided runs produce).
    for algo in tracked_algorithms() {
        let cfg = golden_config(algo).with_elision(false);
        let (report, trace) = run_with_trace(cfg.clone(), 1_000_000).unwrap();
        let text = serialize_trace(&cfg, &trace, &report);
        let expected = std::fs::read_to_string(golden_path(algo.label()))
            .expect("golden file exists (run the elided test first)");
        assert_eq!(
            text, expected,
            "{algo}: disabling elision changed the golden trace"
        );
    }
}

#[test]
fn golden_serialization_is_bit_stable() {
    // Two fresh runs of the same scenario must serialize byte-identically —
    // the property that lets the files above act as regression anchors.
    let cfg = golden_config(CcAlgorithm::Blocking);
    let (ra, ta) = run_with_trace(cfg.clone(), 1_000_000).unwrap();
    let (rb, tb) = run_with_trace(cfg.clone(), 1_000_000).unwrap();
    assert_eq!(
        serialize_trace(&cfg, &ta, &ra),
        serialize_trace(&cfg, &tb, &rb)
    );
}
