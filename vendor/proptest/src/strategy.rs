//! The [`Strategy`] abstraction: how test inputs are generated.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Erase the concrete strategy type (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.options.len() as u64) as usize;
        self.options[ix].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + (rng.below(span) as $ty)
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive integer range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    lo + (rng.below(span + 1) as $ty)
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    let off = rng.below(span) as i64;
                    ((self.start as i64) + off) as $ty
                }
            }
        )+
    };
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive f64 range strategy");
        // Map the unit draw so the endpoint is reachable (matters for
        // probability parameters tested exactly at 1.0).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic(0xABCD, 0)
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = (3u64..17).generate(&mut r);
            assert!((3..17).contains(&x));
            let y = (0u8..12).generate(&mut r);
            assert!(y < 12);
            let z = (5usize..=9).generate(&mut r);
            assert!((5..=9).contains(&z));
        }
    }

    #[test]
    fn f64_ranges_stay_in_bounds_and_reach_spread() {
        let mut r = rng();
        let mut lo_half = 0;
        for _ in 0..10_000 {
            let x = (2.0f64..4.0).generate(&mut r);
            assert!((2.0..4.0).contains(&x));
            if x < 3.0 {
                lo_half += 1;
            }
            let y = (0.0f64..=1.0).generate(&mut r);
            assert!((0.0..=1.0).contains(&y));
        }
        assert!((3_000..7_000).contains(&lo_half));
    }

    #[test]
    fn map_and_just_and_union() {
        let mut r = rng();
        let doubled = (1u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut r);
            assert_eq!(v % 2, 0);
            assert!(v < 20);
        }
        assert_eq!(Just(41).generate(&mut r), 41);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn tuples_compose() {
        let mut r = rng();
        let (a, b, c) = (0u64..5, 1.0f64..2.0, Just("x")).generate(&mut r);
        assert!(a < 5);
        assert!((1.0..2.0).contains(&b));
        assert_eq!(c, "x");
    }
}
