//! Test-runner support: configuration, the case RNG, and the error type
//! `prop_assert!` produces.

/// Per-block configuration; set with `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed test case: the message from the `prop_assert!` that tripped.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure from a message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator strategies draw from (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for case `case` of the test identified by `test_seed`.
    #[must_use]
    pub fn deterministic(test_seed: u64, case: u64) -> Self {
        TestRng {
            state: test_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is negligible for test-input generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::deterministic(7, 3);
        let mut b = TestRng::deterministic(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic(7, 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::deterministic(1, 1);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = TestRng::deterministic(2, 2);
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
