//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest its test suites use: the [`Strategy`] abstraction
//! (ranges, tuples, `Just`, `any`, `prop_map`, `prop_oneof!`,
//! `collection::vec`), the [`proptest!`] test macro with
//! `ProptestConfig::with_cases`, and the `prop_assert*` family.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via `Debug`) and
//!   the deterministic case number instead of a minimized counterexample.
//! * **Deterministic by construction.** Case `k` of test `t` always draws
//!   from the same stream, seeded by FNV-1a of the test's module path and
//!   name mixed with `k`, so failures reproduce without a persistence file.
//!
//! [`Strategy`]: strategy::Strategy
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     // (in a test module this would also carry `#[test]`)
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # addition_commutes();
//! ```

#![warn(clippy::all)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// FNV-1a over a string: a stable, dependency-free hash for per-test seeds.
#[doc(hidden)]
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test that runs the body over `cases` generated inputs.
///
/// An optional leading `#![proptest_config(...)]` sets the configuration
/// for every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let test_seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(test_seed, u64::from(case));
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Render inputs before the body runs: the body may consume
                // (move out of) the generated values.
                let rendered_inputs = format!("{:#?}", ($(&$arg,)+));
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = result {
                    panic!(
                        "proptest case {case}/{} failed: {err}\ninputs: {rendered_inputs}",
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (with
/// optional formatted context) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
