//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        let len = self.size.start
            + if span == 0 {
                0
            } else {
                rng.below(span as u64) as usize
            };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// A vector of values from `elem`, with length in `size` (half-open).
#[must_use]
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec-length range");
    VecStrategy { elem, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::deterministic(4, 4);
        let s = vec(0u32..50, 2..9);
        let mut min_len = usize::MAX;
        let mut max_len = 0;
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            min_len = min_len.min(v.len());
            max_len = max_len.max(v.len());
            assert!(v.iter().all(|&x| x < 50));
        }
        assert_eq!(min_len, 2);
        assert_eq!(max_len, 8);
    }
}
