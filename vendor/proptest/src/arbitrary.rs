//! `any::<T>()` — the canonical full-range strategy for a type.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: unit interval scaled to a wide but safe span.
        (rng.unit_f64() - 0.5) * 2.0e12
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy generating unconstrained values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::deterministic(9, 9);
        let s = any::<bool>();
        let mut t = 0;
        for _ in 0..1000 {
            if s.generate(&mut rng) {
                t += 1;
            }
        }
        assert!((300..700).contains(&t));
    }

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::deterministic(9, 9);
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }
}
