//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the thin slice of crossbeam it actually uses:
//!
//! * [`scope`] — scoped threads, implemented over [`std::thread::scope`]
//!   (stable since Rust 1.63) with crossbeam's `Result`-returning signature;
//! * [`channel::unbounded`] — a multi-producer multi-consumer FIFO channel
//!   built on `Mutex` + `Condvar`.
//!
//! Semantics match crossbeam for the operations the workspace exercises:
//! cloneable senders and receivers, `recv` blocking until a message arrives
//! or every sender is dropped, and `scope` returning `Err` with the panic
//! payload if any spawned thread panicked.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod channel;
pub mod thread;

pub use thread::{scope, Scope};
