//! An unbounded MPMC FIFO channel over `Mutex` + `Condvar`.
//!
//! Matches the crossbeam-channel surface this workspace uses: cloneable
//! [`Sender`]/[`Receiver`], blocking [`Receiver::recv`] that errors once
//! the channel is empty and all senders are gone, and a draining
//! [`Receiver::iter`].

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver has been dropped.
/// Carries the unsent message back to the caller, like crossbeam's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// The sending half; clone freely across threads.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; clone freely across threads (each message is
/// delivered to exactly one receiver).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Create an unbounded channel.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Enqueue a message, waking one blocked receiver.
    ///
    /// # Errors
    /// Returns [`SendError`] with the message if all receivers are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.state.lock().expect("channel poisoned");
        if st.receivers == 0 {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.chan.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().expect("channel poisoned").senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().expect("channel poisoned");
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Wake every blocked receiver so they can observe disconnection.
            self.chan.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or the channel disconnects.
    ///
    /// # Errors
    /// Returns [`RecvError`] once the channel is empty and all senders have
    /// been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.state.lock().expect("channel poisoned");
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.chan.ready.wait(st).expect("channel poisoned");
        }
    }

    /// A non-blocking receive used by drain loops; `None` means "currently
    /// empty", not "disconnected".
    pub fn try_recv(&self) -> Option<T> {
        self.chan
            .state
            .lock()
            .expect("channel poisoned")
            .queue
            .pop_front()
    }

    /// Iterate messages, blocking between them, until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().expect("channel poisoned").receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().expect("channel poisoned");
        st.receivers -= 1;
    }
}

/// Blocking iterator over received messages; ends at disconnection.
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn multi_producer_multi_consumer_delivers_everything() {
        let (tx, rx) = unbounded::<usize>();
        let n_producers = 4;
        let per_producer = 250;
        std::thread::scope(|s| {
            for p in 0..n_producers {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per_producer {
                        tx.send(p * per_producer + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut handles = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                handles.push(s.spawn(move || rx.iter().count()));
            }
            drop(rx);
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, n_producers * per_producer);
        });
    }
}
