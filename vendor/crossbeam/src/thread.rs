//! Scoped threads with crossbeam's calling convention, on top of
//! [`std::thread::scope`].

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The error type `scope` reports when a spawned thread panicked: the
/// panic payload of the first observed panic.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A handle for spawning scoped threads; passed to the `scope` closure and
/// to every spawned thread's closure (crossbeam's nested-spawn idiom).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread scoped to this scope. The closure receives a `Scope`
    /// so it can spawn further threads, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Create a scope for spawning threads that may borrow from the enclosing
/// stack frame. All spawned threads are joined before `scope` returns.
///
/// Returns `Ok` with the closure's result, or `Err` carrying the panic
/// payload if the closure or any spawned thread panicked.
///
/// # Errors
/// Returns the first observed panic payload.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_run_and_join() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
