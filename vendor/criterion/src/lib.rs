//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal wall-clock benchmark harness with the API slice its benches
//! use: `Criterion::benchmark_group`, group knobs (`sample_size`,
//! `measurement_time`, `throughput`), `bench_function` with
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Reporting is intentionally simple: mean wall-clock time per iteration
//! (and derived element throughput when configured), printed to stdout.
//! There is no statistical regression analysis, HTML output, or warmup
//! model beyond one untimed calibration pass.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::ZERO,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the untimed warm-up budget run before sampling begins.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark: calibrate, then time samples until the sample
    /// budget or the measurement-time budget is exhausted.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        // One untimed calibration pass, then warm up until the budget is
        // spent.
        f(&mut bencher);
        let calibration = bencher.per_iter();
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            bencher.elapsed = Duration::ZERO;
            bencher.iters = 0;
            f(&mut bencher);
        }

        let budget_start = Instant::now();
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut samples = 0usize;
        while samples < self.sample_size && budget_start.elapsed() < self.measurement_time {
            bencher.elapsed = Duration::ZERO;
            bencher.iters = 0;
            f(&mut bencher);
            total += bencher.elapsed;
            iters += bencher.iters;
            samples += 1;
        }
        let per_iter = if iters == 0 {
            calibration
        } else {
            total / u32::try_from(iters.max(1)).unwrap_or(u32::MAX)
        };
        let mut line = format!(
            "{}/{id}: {per_iter:?}/iter over {samples} samples",
            self.name
        );
        if let Some(tp) = self.throughput {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                match tp {
                    Throughput::Elements(n) => {
                        line += &format!(" ({:.0} elem/s)", n as f64 / secs);
                    }
                    Throughput::Bytes(n) => {
                        line += &format!(" ({:.0} B/s)", n as f64 / secs);
                    }
                }
            }
        }
        println!("{line}");
        self
    }

    /// End the group (parity with criterion; prints nothing extra).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; times the routine.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time one execution of `routine` (accumulating across calls).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }

    fn per_iter(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / u32::try_from(self.iters).unwrap_or(u32::MAX)
        }
    }
}

/// Define a group-running function from a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut runs = 0;
        g.sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .throughput(Throughput::Elements(1));
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            });
        });
        g.finish();
        assert!(runs >= 4, "calibration + samples should run the routine");
    }
}
