//! `ccsim-repro` — umbrella crate for the reproduction of Agrawal, Carey &
//! Livny, *"Models for Studying Concurrency Control Performance:
//! Alternatives and Implications"* (SIGMOD 1985).
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the substance lives in the
//! workspace crates, re-exported here for convenience:
//!
//! | crate | role |
//! |---|---|
//! | [`des`] | discrete-event engine: clock, calendar, RNG, distributions |
//! | [`resources`] | CPU pool and partitioned disk array (physical model) |
//! | [`lockmgr`] | 2PL lock table, upgrades, deadlock detection |
//! | [`occ`] | optimistic backward validation |
//! | [`workload`] | Table 1 parameters and transaction generation |
//! | [`stats`] | batch means, confidence intervals, running averages |
//! | [`core`] | the closed queuing model with pluggable CC (Figures 1–2) |
//! | [`experiments`] | figure catalog, parallel sweeps, shape checks |
//! | [`history`] | committed-transaction recording + serializability checker |
//! | [`analytic`] | MVA and contention approximations, validated vs. simulation |

pub use ccsim_analytic as analytic;
pub use ccsim_core as core;
pub use ccsim_des as des;
pub use ccsim_experiments as experiments;
pub use ccsim_history as history;
pub use ccsim_lockmgr as lockmgr;
pub use ccsim_occ as occ;
pub use ccsim_resources as resources;
pub use ccsim_stats as stats;
pub use ccsim_workload as workload;
